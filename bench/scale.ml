(* Scale benchmark: the coloring-core phases (simplify, select, the
   coalescing fixpoint) on Fuzz.Gen high-pressure routines of growing
   size, old implementation vs new.

   "Old" is the retained pre-optimization code (the [Reference] library:
   whole-graph rescan per spill candidate, forbidden-color lists,
   whole-CFG coalescing sweeps with an allocating Briggs test); "new" is
   lib/core as built.  Both sides run on identical inputs and their
   outputs are compared exactly, so every benchmark run doubles as a
   differential test; the timing table then shows the asymptotic gap.
   A full Remat.Allocator.run per size records end-to-end per-phase
   seconds and minor-heap words through Stats. *)

module Cfg = Iloc.Cfg
module Gen = Fuzz.Gen
module Interference = Remat.Interference

let mode = Remat.Mode.Briggs_remat

(* 8+8 registers: enough to color the trivial mass, small enough that a
   high-pressure routine keeps simplify in its spill-candidate loop —
   the loop whose former O(n) rescan this benchmark exists to expose. *)
let machine = Remat.Machine.make ~name:"scale" ~k_int:8 ~k_float:8

let config ~stmts =
  {
    Gen.high_pressure with
    Gen.min_ivars = 20;
    max_ivars = 26;
    min_fvars = 12;
    max_fvars = 16;
    max_depth = 4;
    min_stmts = stmts;
    max_stmts = stmts;
  }

(* Sizes at or above this run the flat-substrate tier instead of the
   old-vs-new coloring comparison: the Reference implementations (and
   dense per-register rows) were never meant for 10^5-10^6
   instructions. *)
let big_threshold = 50_000

(* At the million-instruction tier the depth-4 generator's instruction
   count explodes far faster than the statement budget can resolve
   (adjacent budgets jump past the target by hundreds of thousands), so
   the big tier above ~200k statements flattens nesting to depth 2,
   where the search converges. *)
let big_config ~stmts = { (config ~stmts) with Gen.max_depth = 2 }

let n_instrs cfg =
  let n = ref 0 in
  Cfg.iter_blocks
    (fun b -> n := !n + 1 + List.length b.Iloc.Block.body)
    cfg;
  !n

let generate ~stmts seed = Gen.generate ~config:(config ~stmts) seed

(* Instruction count grows superlinearly in the statement budget (nested
   blocks redraw from the same stmt range), so a proportional controller
   oscillates; bracket the target and binary-search instead, taking the
   budget whose emitted count lands closest.  Returns the budget, not
   the routine: callers regenerate from (seed, budget) whenever they
   need a pristine copy. *)
let stmts_for ?(mk = config) ~target seed =
  let n_of stmts = n_instrs (Gen.generate ~config:(mk ~stmts) seed) in
  if n_of 1 >= target then 1
  else begin
    let hi = ref 2 in
    while n_of !hi < target && !hi < 1 lsl 20 do
      hi := !hi * 2
    done;
    let lo = ref (!hi / 2) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if n_of mid < target then lo := mid else hi := mid
    done;
    if target - n_of !lo <= n_of !hi - target then !lo else !hi
  end

(* The allocator's own preprocessing, up to the first build–coalesce:
   critical-edge splitting, loop analysis, renumbering. *)
let fresh_ctx cfg =
  let cfg0 = Cfg.split_critical_edges cfg in
  let dom = Dataflow.Dominance.compute cfg0 in
  let loops = Dataflow.Loops.compute cfg0 dom in
  let rn = Remat.Renumber.run mode cfg0 in
  Remat.Context.create ~mode ~machine ~loops ~tags:rn.Remat.Renumber.tags
    ~split_pairs:rn.Remat.Renumber.split_pairs
    ~stats:(Remat.Stats.create ()) rn.Remat.Renumber.cfg

let time_min ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

type phase_times = { simplify : float; select : float; coalesce : float }

type row = {
  target : int;
  instrs : int;
  nodes : int;
  edges : int;
  old_t : phase_times;
  new_t : phase_times;
  alloc : (Remat.Stats.phase * float * float * float) list;
      (** full-allocator per-phase (seconds, minor words, major words),
          summed over rounds *)
  counters : (string * int) list;
      (** graph-build volume counters of the instrumented allocation
          (pairs emitted, duplicates dropped, overlay edges) *)
}

(* At and above [big_threshold] sizes run as this row instead: the flat
   substrate (arena encode, dense liveness where it fits, boundary
   liveness), with the flat and structured forms byte-compared through
   the printer, plus one instrumented end-to-end flat allocation.  [u]
   is |U|, the upward-exposed universe boundary liveness compresses its
   rows to. *)
type big_row = {
  btarget : int;
  binstrs : int;
  bblocks : int;
  bregs : int;
  u : int;
  bphases : (string * float) list;
  balloc : (Remat.Stats.phase * float * float * float) list;
      (** end-to-end flat allocation, per-phase (seconds, minor words,
          major words) summed over rounds *)
  bcounters : (string * int) list;  (** see {!row.counters} *)
}

exception Divergence of string

let check_equal what ok =
  if not ok then
    raise
      (Divergence
         (Printf.sprintf "scale bench: old and new %s disagree" what))

(* Per-phase (seconds, minor words, major words) of one instrumented
   allocation, summed over spill rounds, in first-seen phase order. *)
let alloc_stats (res : Remat.Allocator.result) =
  let acc = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (_, phase, s, w, mj) ->
      match Hashtbl.find_opt acc phase with
      | Some (s0, w0, mj0) ->
          Hashtbl.replace acc phase (s0 +. s, w0 +. w, mj0 +. mj)
      | None ->
          Hashtbl.add acc phase (s, w, mj);
          order := phase :: !order)
    (Remat.Stats.by_phase res.Remat.Allocator.stats);
  List.rev_map
    (fun p ->
      let s, w, mj = Hashtbl.find acc p in
      (p, s, w, mj))
    !order

(* The batched graph build's volume counters — deterministic per input,
   so the --check gate can treat them like heap words. *)
let build_counters (res : Remat.Allocator.result) =
  List.map
    (fun c ->
      ( Remat.Stats.counter_to_string c,
        Remat.Stats.counter_total res.Remat.Allocator.stats c ))
    [ Remat.Stats.Build_pairs; Remat.Stats.Build_dupes;
      Remat.Stats.Build_overlay ]

let measure ~repeats ~target seed =
  let stmts = stmts_for ~target seed in
  let cfg () = generate ~stmts seed in
  let instrs = n_instrs (cfg ()) in
  (* Coalesce: the whole unrestricted+conservative fixpoint, fresh
     context per repeat (it mutates the routine and the graph). *)
  let time_coalesce runner =
    let best = ref infinity in
    for _ = 1 to repeats do
      let ctx = fresh_ctx (cfg ()) in
      let t0 = Unix.gettimeofday () in
      runner ctx;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let old_coalesce = time_coalesce Reference.Coalesce.fixpoint in
  let new_coalesce = time_coalesce Remat.Allocator.build_coalesce in
  let ctx_old = fresh_ctx (cfg ()) in
  Reference.Coalesce.fixpoint ctx_old;
  let ctx = fresh_ctx (cfg ()) in
  Remat.Allocator.build_coalesce ctx;
  check_equal "coalesced routines"
    (Cfg.structural_equal ctx_old.Remat.Context.cfg ctx.Remat.Context.cfg);
  (* Simplify and select run read-only on the post-coalesce graph, so
     the same graph serves every repeat of both sides. *)
  let g = Remat.Context.graph ctx in
  let costs = Remat.Spill_cost.phase ctx in
  let k = ctx.Remat.Context.k in
  let old_stack = Reference.Simplify.run g ~k ~costs in
  let new_stack = Remat.Simplify.run g ~k ~costs in
  check_equal "simplify stacks" (old_stack = new_stack);
  let old_simplify =
    time_min ~repeats (fun () -> ignore (Reference.Simplify.run g ~k ~costs))
  in
  let new_simplify =
    time_min ~repeats (fun () -> ignore (Remat.Simplify.run g ~k ~costs))
  in
  let order = new_stack in
  let partners = Array.make (Interference.n_nodes g) [] in
  List.iter
    (fun (a, b) ->
      match (Interference.index_opt g a, Interference.index_opt g b) with
      | Some ia, Some ib ->
          let ia = Interference.find g ia and ib = Interference.find g ib in
          partners.(ia) <- ib :: partners.(ia);
          partners.(ib) <- ia :: partners.(ib)
      | _ -> ())
    ctx.Remat.Context.split_pairs;
  let old_sel = Reference.Select.run g ~k ~order ~partners in
  let new_sel = Remat.Select.run g ~k ~order ~partners in
  check_equal "select colorings"
    (old_sel.Reference.Select.colors = new_sel.Remat.Select.colors
    && old_sel.Reference.Select.spilled = new_sel.Remat.Select.spilled);
  let old_select =
    time_min ~repeats (fun () ->
        ignore (Reference.Select.run g ~k ~order ~partners))
  in
  let new_select =
    time_min ~repeats (fun () ->
        ignore (Remat.Select.run g ~k ~order ~partners))
  in
  (* End-to-end allocation, instrumented: per-phase seconds and heap
     words summed over spill rounds.  The same input also runs with the
     flat substrate disabled and the two results are byte-compared, so
     every benchmark run re-proves the flat path's output identity at
     benchmark (not unit-test) sizes. *)
  let res = Remat.Allocator.run ~mode ~machine (cfg ()) in
  let res_struct =
    Remat.Allocator.run ~mode ~machine ~use_flat:false (cfg ())
  in
  check_equal "flat vs structured allocations"
    (String.equal
       (Cfg.to_string res.Remat.Allocator.cfg)
       (Cfg.to_string res_struct.Remat.Allocator.cfg));
  (* Small sizes default to the incremental builder; forcing the batched
     pipeline on the same input must not move a byte of the output. *)
  let res_batched =
    Remat.Allocator.allocate ~mode ~machine ~batch_build:true (cfg ())
  in
  check_equal "batched vs incremental allocations"
    (String.equal
       (Cfg.to_string res.Remat.Allocator.cfg)
       (Cfg.to_string res_batched.Remat.Allocator.cfg));
  let alloc = alloc_stats res in
  {
    target;
    instrs;
    nodes = Interference.n_nodes g;
    edges = Interference.n_edges g;
    old_t =
      { simplify = old_simplify; select = old_select; coalesce = old_coalesce };
    new_t =
      { simplify = new_simplify; select = new_select; coalesce = new_coalesce };
    alloc;
    counters = build_counters res_batched;
  }

(* Dense liveness keeps |blocks| x |regs|-bit rows per family; at 100k
   instructions that is a few hundred MB and worth timing, at 1M it
   would be gigabytes, so the dense sweep stops here and only boundary
   liveness (rows |U| bits wide) runs above. *)
let dense_cutoff = 200_000

let measure_big ~repeats ~target seed =
  let mk = if target > dense_cutoff then big_config else config in
  let stmts = stmts_for ~mk ~target seed in
  let cfg = Gen.generate ~config:(mk ~stmts) seed in
  let instrs = n_instrs cfg in
  let fl = Iloc.Flat.of_routine cfg in
  check_equal "flat round-trip printouts"
    (String.equal (Cfg.to_string cfg)
       (Cfg.to_string (Iloc.Flat.to_routine fl)));
  let encode =
    time_min ~repeats (fun () -> ignore (Iloc.Flat.of_routine cfg))
  in
  let phases = ref [ ("encode", encode) ] in
  if target <= dense_cutoff then begin
    let live =
      time_min ~repeats (fun () ->
          ignore (Dataflow.Liveness.compute_flat fl))
    in
    phases := ("live", live) :: !phases
  end;
  let boundary =
    time_min ~repeats (fun () ->
        ignore (Dataflow.Liveness.Boundary.compute fl))
  in
  phases := ("boundary", boundary) :: !phases;
  let bl = Dataflow.Liveness.Boundary.compute fl in
  (* End-to-end flat allocation, instrumented, once (a full run at these
     sizes is minutes of work; phase words don't vary across repeats).
     No structured counterpart runs here — dense rows and the structured
     renumber were never meant for this tier; output identity is proven
     by the small tier's byte-compare and the A/B property tests. *)
  let res = Remat.Allocator.run ~mode ~machine cfg in
  (* Up to the dense cutoff, re-run with the batched builder forced off
     and byte-compare: the CI smoke size (100k) then proves batched ≡
     incremental at a five-digit node count on every bench run.  Above
     the cutoff the incremental rebuild is the minutes-long baseline
     this PR retired, so identity at the top size rests on the one-off
     A/B recorded in DESIGN.md plus the property tests. *)
  if target <= dense_cutoff then begin
    let res_inc =
      Remat.Allocator.allocate ~mode ~machine ~batch_build:false
        (Gen.generate ~config:(mk ~stmts) seed)
    in
    check_equal "batched vs incremental allocations"
      (String.equal
         (Cfg.to_string res.Remat.Allocator.cfg)
         (Cfg.to_string res_inc.Remat.Allocator.cfg))
  end;
  {
    btarget = target;
    binstrs = instrs;
    bblocks = Iloc.Flat.n_blocks fl;
    bregs = Dataflow.Reg_index.count (Dataflow.Reg_index.of_flat fl);
    u = Dataflow.Reg_index.count bl.Dataflow.Liveness.Boundary.uindex;
    bphases = List.rev !phases;
    balloc = alloc_stats res;
    bcounters = build_counters res;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let speedup o n = if n > 0. then o /. n else 0.

(* One allocation's phase line: seconds with each phase's share of the
   end-to-end total, then heap words — the share is what makes a 1M-row
   readable (a phase at 0.8s means nothing until it says 2% vs 60%). *)
let pp_alloc ppf alloc counters =
  let total = List.fold_left (fun a (_, s, _, _) -> a +. s) 0. alloc in
  Format.fprintf ppf " total %.4fs |" total;
  List.iter
    (fun (p, s, w, mj) ->
      Format.fprintf ppf " %s %.4fs(%.0f%%)/%.0fkw/%.0fkW"
        (Remat.Stats.phase_to_string p)
        s
        (if total > 0. then 100. *. s /. total else 0.)
        (w /. 1000.) (mj /. 1000.))
    alloc;
  List.iter (fun (name, v) -> Format.fprintf ppf " %s=%d" name v) counters

let pp ppf rows =
  Format.fprintf ppf
    "=== Scale benchmark: coloring core, old vs new ===@.\
     (Fuzz.Gen high-pressure routines on an %d+%d-register machine;@.\
    \ seconds are the best of the repeats; outputs byte-compared)@.@."
    machine.Remat.Machine.k_int machine.Remat.Machine.k_float;
  Format.fprintf ppf "%8s %8s %8s %9s | %23s | %23s | %23s@." "target"
    "instrs" "nodes" "edges" "simplify old/new" "select old/new"
    "coalesce old/new";
  Format.fprintf ppf "%s@." (String.make 114 '-');
  List.iter
    (fun r ->
      let cell o n = Printf.sprintf "%9.6f/%9.6f %4.1fx" o n (speedup o n) in
      Format.fprintf ppf "%8d %8d %8d %9d | %s | %s | %s@." r.target r.instrs
        r.nodes r.edges
        (cell r.old_t.simplify r.new_t.simplify)
        (cell r.old_t.select r.new_t.select)
        (cell r.old_t.coalesce r.new_t.coalesce))
    rows;
  Format.fprintf ppf
    "@.full allocator (new), per-phase seconds (share of total), \
     minor/major kwords:@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%8d |" r.target;
      pp_alloc ppf r.alloc r.counters;
      Format.fprintf ppf "@.")
    rows;
  Format.fprintf ppf "@."

let pp_big ppf rows =
  Format.fprintf ppf
    "=== Flat substrate at scale ===@.\
     (arena encode + liveness on the packed form; flat and structured@.\
    \ printouts byte-compared; dense rows skipped above %d instrs)@.@."
    dense_cutoff;
  Format.fprintf ppf "%8s %9s %7s %7s %6s | %s@." "target" "instrs" "blocks"
    "regs" "|U|" "phase seconds (best of repeats)";
  Format.fprintf ppf "%s@." (String.make 78 '-');
  List.iter
    (fun r ->
      Format.fprintf ppf "%8d %9d %7d %7d %6d |" r.btarget r.binstrs
        r.bblocks r.bregs r.u;
      List.iter
        (fun (name, s) -> Format.fprintf ppf " %s %.4fs" name s)
        r.bphases;
      Format.fprintf ppf "@.")
    rows;
  Format.fprintf ppf
    "@.end-to-end flat allocation, per-phase seconds (share of total), \
     minor/major kwords:@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%8d |" r.btarget;
      pp_alloc ppf r.balloc r.bcounters;
      Format.fprintf ppf "@.")
    rows;
  Format.fprintf ppf "@."

let alloc_json b alloc =
  List.iteri
    (fun j (p, s, w, mj) ->
      if j > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"phase\":\"%s\",\"seconds\":%.9f,\"minor_words\":%.0f,\"major_words\":%.0f}"
           (Remat.Stats.phase_to_string p)
           s w mj))
    alloc

let counters_json b counters =
  Buffer.add_string b ",\"counters\":{";
  List.iteri
    (fun j (name, v) ->
      if j > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" name v))
    counters;
  Buffer.add_char b '}'

let json ~repeats rows big_rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"bench\":\"scale\",\"machine\":{\"k_int\":%d,\"k_float\":%d},\"repeats\":%d,\"sizes\":["
       machine.Remat.Machine.k_int machine.Remat.Machine.k_float repeats);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      let side t =
        Printf.sprintf
          "{\"simplify\":%.9f,\"select\":%.9f,\"coalesce\":%.9f}" t.simplify
          t.select t.coalesce
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"target\":%d,\"instrs\":%d,\"nodes\":%d,\"edges\":%d,\"old\":%s,\"new\":%s,\"speedup\":{\"simplify\":%.2f,\"select\":%.2f,\"coalesce\":%.2f},\"alloc\":["
           r.target r.instrs r.nodes r.edges (side r.old_t) (side r.new_t)
           (speedup r.old_t.simplify r.new_t.simplify)
           (speedup r.old_t.select r.new_t.select)
           (speedup r.old_t.coalesce r.new_t.coalesce));
      alloc_json b r.alloc;
      Buffer.add_char b ']';
      counters_json b r.counters;
      Buffer.add_char b '}')
    rows;
  Buffer.add_string b "],\"big\":[";
  (* Same "target":N,..."new":{...},"alloc":[...] shape as the small
     entries so [scan_baseline]/[scan_alloc] read both tiers with one
     scanner each. *)
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"target\":%d,\"instrs\":%d,\"blocks\":%d,\"regs\":%d,\"u\":%d,\"new\":{"
           r.btarget r.binstrs r.bblocks r.bregs r.u);
      List.iteri
        (fun j (name, s) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "\"%s\":%.9f" name s))
        r.bphases;
      Buffer.add_string b "},\"alloc\":[";
      alloc_json b r.balloc;
      Buffer.add_char b ']';
      counters_json b r.bcounters;
      Buffer.add_char b '}')
    big_rows;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Baseline comparison (--check)                                       *)

(* Minimal scanner for the JSON this module itself writes: no JSON
   library in the tree, and the schema is ours, so substring navigation
   is enough — find the size entry by its "target", enter its "new"
   object, read one float per phase key. *)
let scan_find text sub from =
  let n = String.length text and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub text i m = sub then Some (i + m)
    else go (i + 1)
  in
  go from

let scan_float text p =
  let e = ref p in
  while
    !e < String.length text
    && (match text.[!e] with
       | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
       | _ -> false)
  do
    incr e
  done;
  float_of_string_opt (String.sub text p (!e - p))

let scan_baseline text ~target phase =
  let ( let* ) = Option.bind in
  let* p = scan_find text (Printf.sprintf "\"target\":%d," target) 0 in
  let* p = scan_find text "\"new\":{" p in
  let* p = scan_find text (Printf.sprintf "\"%s\":" phase) p in
  scan_float text p

(* One allocation-phase figure ("seconds", "minor_words" or
   "major_words") from a size entry's "alloc" array. *)
let scan_alloc text ~target ~phase key =
  let ( let* ) = Option.bind in
  let* p = scan_find text (Printf.sprintf "\"target\":%d," target) 0 in
  let* p = scan_find text "\"alloc\":[" p in
  let* p = scan_find text (Printf.sprintf "{\"phase\":\"%s\"" phase) p in
  let* p = scan_find text (Printf.sprintf "\"%s\":" key) p in
  scan_float text p

(* One build counter from a size entry's "counters" object. *)
let scan_counter text ~target name =
  let ( let* ) = Option.bind in
  let* p = scan_find text (Printf.sprintf "\"target\":%d," target) 0 in
  let* p = scan_find text "\"counters\":{" p in
  let* p = scan_find text (Printf.sprintf "\"%s\":" name) p in
  scan_float text p

(* A phase regresses when it runs more than [factor] slower than the
   checked-in baseline.  Sub-millisecond baselines are pure noise at CI
   smoke sizes, so they are reported but never failed on.  Allocation
   heap words are gated the same way: words are deterministic per input
   (unlike CI seconds), so a >2x jump above the noise floor means a code
   path started allocating where it did not before. *)
let check ~baseline rows big_rows ppf =
  let factor = 2.0 and floor_s = 0.001 in
  let floor_w = 1_000_000. in
  let failures = ref 0 in
  let check_words target phase (key, now) =
    match scan_alloc baseline ~target ~phase key with
    | None ->
        Format.fprintf ppf "check: %d/%s.%s: no baseline entry, skipped@."
          target phase key
    | Some base when base < floor_w && now < floor_w -> ()
    | Some base ->
        let ratio = if base > 0. then now /. base else infinity in
        if now > factor *. base && now > floor_w then begin
          incr failures;
          Format.fprintf ppf
            "check: %d/%s.%s: REGRESSION %.0f words vs baseline %.0f (%.1fx)@."
            target phase key now base ratio
        end
        else
          Format.fprintf ppf "check: %d/%s.%s: ok %.0f vs %.0f words (%.1fx)@."
            target phase key now base ratio
  in
  let check_alloc target alloc =
    List.iter
      (fun (p, _, w, mj) ->
        let phase = Remat.Stats.phase_to_string p in
        List.iter (check_words target phase)
          [ ("minor_words", w); ("major_words", mj) ])
      alloc
  in
  (* Build counters are deterministic per (seed, size), so like heap
     words a >2x jump means graph construction changed shape — e.g. the
     sweep started emitting candidates it used to filter, or coalescing
     began routing edges through the overlay. *)
  let check_counters target counters =
    let floor_c = 1_000. in
    List.iter
      (fun (name, v) ->
        let now = float_of_int v in
        match scan_counter baseline ~target name with
        | None ->
            Format.fprintf ppf "check: %d/%s: no baseline entry, skipped@."
              target name
        | Some base when base < floor_c && now < floor_c -> ()
        | Some base ->
            let ratio = if base > 0. then now /. base else infinity in
            if now > factor *. base then begin
              incr failures;
              Format.fprintf ppf
                "check: %d/%s: REGRESSION %.0f vs baseline %.0f (%.1fx)@."
                target name now base ratio
            end
            else
              Format.fprintf ppf "check: %d/%s: ok %.0f vs %.0f (%.1fx)@."
                target name now base ratio)
      counters
  in
  let check_one target (name, now) =
    match scan_baseline baseline ~target name with
    | None ->
        Format.fprintf ppf "check: %d/%s: no baseline entry, skipped@." target
          name
    | Some base when base < floor_s ->
        Format.fprintf ppf
          "check: %d/%s: baseline %.6fs below noise floor, skipped@." target
          name base
    | Some base ->
        let ratio = if base > 0. then now /. base else 0. in
        if now > factor *. base then begin
          incr failures;
          Format.fprintf ppf
            "check: %d/%s: REGRESSION %.6fs vs baseline %.6fs (%.1fx)@."
            target name now base ratio
        end
        else
          Format.fprintf ppf "check: %d/%s: ok %.6fs vs %.6fs (%.1fx)@."
            target name now base ratio
  in
  List.iter
    (fun r ->
      List.iter (check_one r.target)
        [
          ("simplify", r.new_t.simplify);
          ("select", r.new_t.select);
          ("coalesce", r.new_t.coalesce);
        ];
      check_alloc r.target r.alloc;
      check_counters r.target r.counters)
    rows;
  List.iter
    (fun r ->
      List.iter (check_one r.btarget) r.bphases;
      check_alloc r.btarget r.balloc;
      check_counters r.btarget r.bcounters)
    big_rows;
  !failures = 0

(* ------------------------------------------------------------------ *)

let default_sizes = [ 1000; 5000; 20000; 100_000; 1_000_000 ]

(* Entry point shared by bench/main.exe and `ralloc bench scale`.
   Returns the process exit code: 0 clean, 1 on an old/new divergence, a
   flat-vs-structured mismatch, or a --check regression. *)
let run ?(sizes = default_sizes) ?(repeats = 3) ?(seed = 42) ?out ?check_file
    ppf =
  let small_sizes, big_sizes =
    List.partition (fun s -> s < big_threshold) sizes
  in
  match
    let rows =
      List.map
        (fun target ->
          Format.fprintf ppf "; measuring %d instructions...@." target;
          Format.pp_print_flush ppf ();
          measure ~repeats ~target seed)
        small_sizes
    in
    let big_rows =
      List.map
        (fun target ->
          Format.fprintf ppf "; measuring %d instructions (flat tier)...@."
            target;
          Format.pp_print_flush ppf ();
          measure_big ~repeats ~target seed)
        big_sizes
    in
    (rows, big_rows)
  with
  | exception Divergence msg ->
      Format.fprintf ppf "%s@." msg;
      1
  | rows, big_rows ->
      if rows <> [] then pp ppf rows;
      if big_rows <> [] then pp_big ppf big_rows;
      (match out with
      | Some path ->
          let oc = open_out path in
          output_string oc (json ~repeats rows big_rows);
          output_char oc '\n';
          close_out oc;
          Format.fprintf ppf "(written to %s)@." path
      | None -> ());
      (match check_file with
      | None -> 0
      | Some path ->
          let ic = open_in_bin path in
          let baseline =
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          if check ~baseline rows big_rows ppf then begin
            Format.fprintf ppf "check: no phase regressed more than 2x@.";
            0
          end
          else 1)
