(* Scale benchmark: the coloring-core phases (simplify, select, the
   coalescing fixpoint) on Fuzz.Gen high-pressure routines of growing
   size, old implementation vs new.

   "Old" is the retained pre-optimization code (the [Reference] library:
   whole-graph rescan per spill candidate, forbidden-color lists,
   whole-CFG coalescing sweeps with an allocating Briggs test); "new" is
   lib/core as built.  Both sides run on identical inputs and their
   outputs are compared exactly, so every benchmark run doubles as a
   differential test; the timing table then shows the asymptotic gap.
   A full Remat.Allocator.run per size records end-to-end per-phase
   seconds and minor-heap words through Stats. *)

module Cfg = Iloc.Cfg
module Gen = Fuzz.Gen
module Interference = Remat.Interference

let mode = Remat.Mode.Briggs_remat

(* 8+8 registers: enough to color the trivial mass, small enough that a
   high-pressure routine keeps simplify in its spill-candidate loop —
   the loop whose former O(n) rescan this benchmark exists to expose. *)
let machine = Remat.Machine.make ~name:"scale" ~k_int:8 ~k_float:8

let config ~stmts =
  {
    Gen.high_pressure with
    Gen.min_ivars = 20;
    max_ivars = 26;
    min_fvars = 12;
    max_fvars = 16;
    max_depth = 4;
    min_stmts = stmts;
    max_stmts = stmts;
  }

let n_instrs cfg =
  let n = ref 0 in
  Cfg.iter_blocks
    (fun b -> n := !n + 1 + List.length b.Iloc.Block.body)
    cfg;
  !n

let generate ~stmts seed = Gen.generate ~config:(config ~stmts) seed

(* Instruction count grows superlinearly in the statement budget (nested
   blocks redraw from the same stmt range), so a proportional controller
   oscillates; bracket the target and binary-search instead, taking the
   budget whose emitted count lands closest.  Returns the budget, not
   the routine: callers regenerate from (seed, budget) whenever they
   need a pristine copy. *)
let stmts_for ~target seed =
  let n_of stmts = n_instrs (generate ~stmts seed) in
  if n_of 1 >= target then 1
  else begin
    let hi = ref 2 in
    while n_of !hi < target && !hi < 1 lsl 20 do
      hi := !hi * 2
    done;
    let lo = ref (!hi / 2) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if n_of mid < target then lo := mid else hi := mid
    done;
    if target - n_of !lo <= n_of !hi - target then !lo else !hi
  end

(* The allocator's own preprocessing, up to the first build–coalesce:
   critical-edge splitting, loop analysis, renumbering. *)
let fresh_ctx cfg =
  let cfg0 = Cfg.split_critical_edges cfg in
  let dom = Dataflow.Dominance.compute cfg0 in
  let loops = Dataflow.Loops.compute cfg0 dom in
  let rn = Remat.Renumber.run mode cfg0 in
  Remat.Context.create ~mode ~machine ~loops ~tags:rn.Remat.Renumber.tags
    ~split_pairs:rn.Remat.Renumber.split_pairs
    ~stats:(Remat.Stats.create ()) rn.Remat.Renumber.cfg

let time_min ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

type phase_times = { simplify : float; select : float; coalesce : float }

type row = {
  target : int;
  instrs : int;
  nodes : int;
  edges : int;
  old_t : phase_times;
  new_t : phase_times;
  alloc : (Remat.Stats.phase * float * float) list;
      (** full-allocator per-phase (seconds, minor words), summed over
          rounds *)
}

exception Divergence of string

let check_equal what ok =
  if not ok then
    raise
      (Divergence
         (Printf.sprintf "scale bench: old and new %s disagree" what))

let measure ~repeats ~target seed =
  let stmts = stmts_for ~target seed in
  let cfg () = generate ~stmts seed in
  let instrs = n_instrs (cfg ()) in
  (* Coalesce: the whole unrestricted+conservative fixpoint, fresh
     context per repeat (it mutates the routine and the graph). *)
  let time_coalesce runner =
    let best = ref infinity in
    for _ = 1 to repeats do
      let ctx = fresh_ctx (cfg ()) in
      let t0 = Unix.gettimeofday () in
      runner ctx;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let old_coalesce = time_coalesce Reference.Coalesce.fixpoint in
  let new_coalesce = time_coalesce Remat.Allocator.build_coalesce in
  let ctx_old = fresh_ctx (cfg ()) in
  Reference.Coalesce.fixpoint ctx_old;
  let ctx = fresh_ctx (cfg ()) in
  Remat.Allocator.build_coalesce ctx;
  check_equal "coalesced routines"
    (Cfg.structural_equal ctx_old.Remat.Context.cfg ctx.Remat.Context.cfg);
  (* Simplify and select run read-only on the post-coalesce graph, so
     the same graph serves every repeat of both sides. *)
  let g = Remat.Context.graph ctx in
  let costs = Remat.Spill_cost.phase ctx in
  let k = ctx.Remat.Context.k in
  let old_stack = Reference.Simplify.run g ~k ~costs in
  let new_stack = Remat.Simplify.run g ~k ~costs in
  check_equal "simplify stacks" (old_stack = new_stack);
  let old_simplify =
    time_min ~repeats (fun () -> ignore (Reference.Simplify.run g ~k ~costs))
  in
  let new_simplify =
    time_min ~repeats (fun () -> ignore (Remat.Simplify.run g ~k ~costs))
  in
  let order = new_stack in
  let partners = Array.make (Interference.n_nodes g) [] in
  List.iter
    (fun (a, b) ->
      match (Interference.index_opt g a, Interference.index_opt g b) with
      | Some ia, Some ib ->
          let ia = Interference.find g ia and ib = Interference.find g ib in
          partners.(ia) <- ib :: partners.(ia);
          partners.(ib) <- ia :: partners.(ib)
      | _ -> ())
    ctx.Remat.Context.split_pairs;
  let old_sel = Reference.Select.run g ~k ~order ~partners in
  let new_sel = Remat.Select.run g ~k ~order ~partners in
  check_equal "select colorings"
    (old_sel.Reference.Select.colors = new_sel.Remat.Select.colors
    && old_sel.Reference.Select.spilled = new_sel.Remat.Select.spilled);
  let old_select =
    time_min ~repeats (fun () ->
        ignore (Reference.Select.run g ~k ~order ~partners))
  in
  let new_select =
    time_min ~repeats (fun () ->
        ignore (Remat.Select.run g ~k ~order ~partners))
  in
  (* End-to-end allocation, instrumented: per-phase seconds and
     minor-heap words summed over spill rounds. *)
  let res = Remat.Allocator.run ~mode ~machine (cfg ()) in
  let alloc =
    let acc = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (_, phase, s, w) ->
        match Hashtbl.find_opt acc phase with
        | Some (s0, w0) -> Hashtbl.replace acc phase (s0 +. s, w0 +. w)
        | None ->
            Hashtbl.add acc phase (s, w);
            order := phase :: !order)
      (Remat.Stats.by_phase res.Remat.Allocator.stats);
    List.rev_map
      (fun p ->
        let s, w = Hashtbl.find acc p in
        (p, s, w))
      !order
  in
  {
    target;
    instrs;
    nodes = Interference.n_nodes g;
    edges = Interference.n_edges g;
    old_t =
      { simplify = old_simplify; select = old_select; coalesce = old_coalesce };
    new_t =
      { simplify = new_simplify; select = new_select; coalesce = new_coalesce };
    alloc;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let speedup o n = if n > 0. then o /. n else 0.

let pp ppf rows =
  Format.fprintf ppf
    "=== Scale benchmark: coloring core, old vs new ===@.\
     (Fuzz.Gen high-pressure routines on an %d+%d-register machine;@.\
    \ seconds are the best of the repeats; outputs byte-compared)@.@."
    machine.Remat.Machine.k_int machine.Remat.Machine.k_float;
  Format.fprintf ppf "%8s %8s %8s %9s | %23s | %23s | %23s@." "target"
    "instrs" "nodes" "edges" "simplify old/new" "select old/new"
    "coalesce old/new";
  Format.fprintf ppf "%s@." (String.make 114 '-');
  List.iter
    (fun r ->
      let cell o n = Printf.sprintf "%9.6f/%9.6f %4.1fx" o n (speedup o n) in
      Format.fprintf ppf "%8d %8d %8d %9d | %s | %s | %s@." r.target r.instrs
        r.nodes r.edges
        (cell r.old_t.simplify r.new_t.simplify)
        (cell r.old_t.select r.new_t.select)
        (cell r.old_t.coalesce r.new_t.coalesce))
    rows;
  Format.fprintf ppf
    "@.full allocator (new), per-phase seconds and minor kwords:@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "%8d |" r.target;
      List.iter
        (fun (p, s, w) ->
          Format.fprintf ppf " %s %.4fs/%.0fkw"
            (Remat.Stats.phase_to_string p)
            s (w /. 1000.))
        r.alloc;
      Format.fprintf ppf "@.")
    rows;
  Format.fprintf ppf "@."

let json ~repeats rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"bench\":\"scale\",\"machine\":{\"k_int\":%d,\"k_float\":%d},\"repeats\":%d,\"sizes\":["
       machine.Remat.Machine.k_int machine.Remat.Machine.k_float repeats);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      let side t =
        Printf.sprintf
          "{\"simplify\":%.9f,\"select\":%.9f,\"coalesce\":%.9f}" t.simplify
          t.select t.coalesce
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"target\":%d,\"instrs\":%d,\"nodes\":%d,\"edges\":%d,\"old\":%s,\"new\":%s,\"speedup\":{\"simplify\":%.2f,\"select\":%.2f,\"coalesce\":%.2f},\"alloc\":["
           r.target r.instrs r.nodes r.edges (side r.old_t) (side r.new_t)
           (speedup r.old_t.simplify r.new_t.simplify)
           (speedup r.old_t.select r.new_t.select)
           (speedup r.old_t.coalesce r.new_t.coalesce));
      List.iteri
        (fun j (p, s, w) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               "{\"phase\":\"%s\",\"seconds\":%.9f,\"minor_words\":%.0f}"
               (Remat.Stats.phase_to_string p)
               s w))
        r.alloc;
      Buffer.add_string b "]}")
    rows;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Baseline comparison (--check)                                       *)

(* Minimal scanner for the JSON this module itself writes: no JSON
   library in the tree, and the schema is ours, so substring navigation
   is enough — find the size entry by its "target", enter its "new"
   object, read one float per phase key. *)
let scan_baseline text ~target phase =
  let find sub from =
    let n = String.length text and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub text i m = sub then Some (i + m)
      else go (i + 1)
    in
    go from
  in
  let ( let* ) = Option.bind in
  let* p = find (Printf.sprintf "\"target\":%d," target) 0 in
  let* p = find "\"new\":{" p in
  let* p = find (Printf.sprintf "\"%s\":" phase) p in
  let e = ref p in
  while
    !e < String.length text
    && (match text.[!e] with
       | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
       | _ -> false)
  do
    incr e
  done;
  float_of_string_opt (String.sub text p (!e - p))

(* A phase regresses when it runs more than [factor] slower than the
   checked-in baseline.  Sub-millisecond baselines are pure noise at CI
   smoke sizes, so they are reported but never failed on. *)
let check ~baseline rows ppf =
  let factor = 2.0 and floor_s = 0.001 in
  let failures = ref 0 in
  List.iter
    (fun r ->
      List.iter
        (fun (name, now) ->
          match scan_baseline baseline ~target:r.target name with
          | None ->
              Format.fprintf ppf "check: %d/%s: no baseline entry, skipped@."
                r.target name
          | Some base when base < floor_s ->
              Format.fprintf ppf
                "check: %d/%s: baseline %.6fs below noise floor, skipped@."
                r.target name base
          | Some base ->
              let ratio = if base > 0. then now /. base else 0. in
              if now > factor *. base then begin
                incr failures;
                Format.fprintf ppf
                  "check: %d/%s: REGRESSION %.6fs vs baseline %.6fs (%.1fx)@."
                  r.target name now base ratio
              end
              else
                Format.fprintf ppf "check: %d/%s: ok %.6fs vs %.6fs (%.1fx)@."
                  r.target name now base ratio)
        [
          ("simplify", r.new_t.simplify);
          ("select", r.new_t.select);
          ("coalesce", r.new_t.coalesce);
        ])
    rows;
  !failures = 0

(* ------------------------------------------------------------------ *)

let default_sizes = [ 1000; 5000; 20000 ]

(* Entry point shared by bench/main.exe and `ralloc bench scale`.
   Returns the process exit code: 0 clean, 1 on an old/new divergence or
   a --check regression. *)
let run ?(sizes = default_sizes) ?(repeats = 3) ?(seed = 42) ?out ?check_file
    ppf =
  match
    List.map
      (fun target ->
        Format.fprintf ppf "; measuring %d instructions...@." target;
        Format.pp_print_flush ppf ();
        measure ~repeats ~target seed)
      sizes
  with
  | exception Divergence msg ->
      Format.fprintf ppf "%s@." msg;
      1
  | rows ->
      pp ppf rows;
      (match out with
      | Some path ->
          let oc = open_out path in
          output_string oc (json ~repeats rows);
          output_char oc '\n';
          close_out oc;
          Format.fprintf ppf "(written to %s)@." path
      | None -> ());
      (match check_file with
      | None -> 0
      | Some path ->
          let ic = open_in_bin path in
          let baseline =
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          if check ~baseline rows ppf then begin
            Format.fprintf ppf "check: no phase regressed more than 2x@.";
            0
          end
          else 1)
