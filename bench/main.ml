(* The benchmark harness: regenerates every table and figure from the
   paper's evaluation (§5) plus the §6 splitting ablation, and runs
   Bechamel micro-benchmarks of the allocator itself (one group per
   table/figure).

   Usage:
     bench/main.exe                run everything
     bench/main.exe table1         spill-cost comparison (Table 1)
     bench/main.exe table2         per-phase allocation times (Table 2)
     bench/main.exe scale          coloring-core scaling, old vs new
     bench/main.exe fig1|fig2|fig3|fig4
     bench/main.exe ablation       splitting schemes of section 6
     bench/main.exe bechamel       micro-benchmarks only

   Flags (anywhere on the command line):
     --repeats N   timing repetitions per table2 measurement (default 10)
     --jobs N      worker domains for table2 columns (default 1; parallel
                   columns contend for cores, so use N > 1 for counter
                   regeneration and CI smoke runs, not wall-clock numbers) *)

let std = Format.std_formatter

let table1 () =
  Format.fprintf std
    "=== Table 1: Effects of Rematerialization ===@.\
     (cycles of spill code = dynamic cycles on the standard 16+16 machine@.\
    \ minus cycles on the huge 128+128 machine; columns show the percentage@.\
    \ of the Optimistic cost saved per instruction category)@.@.";
  let rows = Suite.Report.table1 ~only_changed:true () in
  Suite.Report.pp_table1 std rows;
  Format.fprintf std "@."

let table2 ~repeats ~jobs () =
  Format.fprintf std
    "=== Table 2: Allocation Times in Seconds ===@.\
     (Old = Chaitin-style rematerialization, New = this paper; averages@.\
    \ over %d runs; rows are round:phase as in the paper)@.@."
    repeats;
  let cols =
    Suite.Report.table2 ~repeats ~jobs [ "repvid"; "tomcatv"; "twldrv" ]
  in
  Suite.Report.pp_table2 std cols;
  let json_path = "BENCH_alloc.json" in
  let oc = open_out json_path in
  output_string oc (Suite.Report.table2_json cols);
  output_char oc '\n';
  close_out oc;
  Format.fprintf std "@.(per-phase timings and counters written to %s)@.@."
    json_path

let scale ~repeats () =
  let code =
    Scale_bench.Scale.run ~repeats ~out:"BENCH_scale.json" std
  in
  if code <> 0 then exit code

let ablation () =
  Format.fprintf std
    "=== Section 6 ablation: splitting schemes ===@.\
     (spill cycles per allocator variant on the standard machine;@.\
    \ briggs-phi-splits splits at every phi-node as sketched in section 6)@.@.";
  let rows = Suite.Report.ablation () in
  Suite.Report.pp_ablation std rows;
  Format.fprintf std "@."

let baseline () =
  Format.fprintf std
    "=== Local-allocator baseline (the §5.4 reference point) ===@.\
     (total dynamic cycles on the standard machine: the fast local@.\
    \ allocator of non-optimizing compilers vs the global allocators)@.@.";
  Format.fprintf std "%-12s %12s %12s %12s %12s@." "routine" "local"
    "no-remat" "chaitin" "briggs";
  Format.fprintf std "%s@." (String.make 64 '-');
  List.iter
    (fun k ->
      let cfg = Suite.Kernels.cfg_of ~optimize:true k in
      let cycles c = Sim.Counts.cycles (Sim.Interp.run c).Sim.Interp.counts in
      let local =
        cycles (Remat.Local_allocator.run cfg).Remat.Local_allocator.cfg
      in
      let global mode =
        cycles
          (Remat.Allocator.run ~mode ~machine:Remat.Machine.standard cfg)
            .Remat.Allocator.cfg
      in
      Format.fprintf std "%-12s %12d %12d %12d %12d@." k.Suite.Kernels.name
        local
        (global Remat.Mode.No_remat)
        (global Remat.Mode.Chaitin_remat)
        (global Remat.Mode.Briggs_remat))
    Suite.Kernels.all;
  Format.fprintf std "@."

(* --- Bechamel micro-benchmarks: one group per table/figure --- *)

(* Old (byte-at-a-time, Bitset_ref) vs new (word-parallel,
   Dataflow.Bitset) dataflow kernels on liveness-shaped sets: 512
   registers, ~1/8 occupancy.  The element lists are deterministic so
   both implementations chew identical data. *)
let bitset_tests =
  let open Bechamel in
  let cap = 512 in
  let elems salt =
    List.init (cap / 8) (fun i -> (i * 8 + ((i * salt) mod 8)) mod cap)
  in
  let e1 = elems 3 and e2 = elems 5 in
  let old1 = Bitset_ref.of_list cap e1 and old2 = Bitset_ref.of_list cap e2 in
  let new1 = Dataflow.Bitset.of_list cap e1
  and new2 = Dataflow.Bitset.of_list cap e2 in
  [
    Test.make ~name:"bitset/union-old"
      (Staged.stage (fun () -> ignore (Bitset_ref.union_into ~dst:old1 old2)));
    Test.make ~name:"bitset/union-new"
      (Staged.stage (fun () ->
           ignore (Dataflow.Bitset.union_into ~dst:new1 new2)));
    Test.make ~name:"bitset/inter-diff-old"
      (Staged.stage (fun () ->
           ignore (Bitset_ref.inter_into ~dst:old1 old2);
           ignore (Bitset_ref.diff_into ~dst:old1 old2)));
    Test.make ~name:"bitset/inter-diff-new"
      (Staged.stage (fun () ->
           ignore (Dataflow.Bitset.inter_into ~dst:new1 new2);
           ignore (Dataflow.Bitset.diff_into ~dst:new1 new2)));
    Test.make ~name:"bitset/iter-old"
      (Staged.stage (fun () ->
           let n = ref 0 in
           Bitset_ref.iter (fun i -> n := !n + i) old2;
           ignore !n));
    Test.make ~name:"bitset/iter-new"
      (Staged.stage (fun () ->
           let n = ref 0 in
           Dataflow.Bitset.iter (fun i -> n := !n + i) new2;
           ignore !n));
    Test.make ~name:"bitset/cardinal-old"
      (Staged.stage (fun () -> ignore (Bitset_ref.cardinal old2)));
    Test.make ~name:"bitset/cardinal-new"
      (Staged.stage (fun () -> ignore (Dataflow.Bitset.cardinal new2)));
    Test.make ~name:"bitset/add-mem-old"
      (Staged.stage (fun () ->
           let s = Bitset_ref.create cap in
           List.iter (Bitset_ref.add s) e1;
           let n = ref 0 in
           List.iter (fun i -> if Bitset_ref.mem s i then incr n) e2;
           ignore !n));
    Test.make ~name:"bitset/add-mem-new"
      (Staged.stage (fun () ->
           let s = Dataflow.Bitset.create cap in
           List.iter (Dataflow.Bitset.add s) e1;
           let n = ref 0 in
           List.iter (fun i -> if Dataflow.Bitset.mem s i then incr n) e2;
           ignore !n));
  ]

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let fig1_cfg = Suite.Figures.fig1_source () in
  let kernel name = Suite.Kernels.cfg_of (Suite.Kernels.find name) in
  let tomcatv = kernel "tomcatv" in
  let twldrv = kernel "twldrv" in
  let alloc mode machine cfg () =
    ignore (Remat.Allocator.run ~mode ~machine cfg)
  in
  let tests =
    bitset_tests
    @ [
      (* Table 1 engine: both allocators end to end. *)
      Test.make ~name:"table1/chaitin-tomcatv"
        (Staged.stage
           (alloc Remat.Mode.Chaitin_remat Remat.Machine.standard tomcatv));
      Test.make ~name:"table1/briggs-tomcatv"
        (Staged.stage
           (alloc Remat.Mode.Briggs_remat Remat.Machine.standard tomcatv));
      (* Table 2 subject: the largest routine. *)
      Test.make ~name:"table2/briggs-twldrv"
        (Staged.stage
           (alloc Remat.Mode.Briggs_remat Remat.Machine.standard twldrv));
      (* Figure 3 engine: renumber with tag propagation. *)
      Test.make ~name:"fig3/renumber-briggs"
        (Staged.stage (fun () ->
             ignore
               (Remat.Renumber.run Remat.Mode.Briggs_remat
                  (Iloc.Cfg.split_critical_edges fig1_cfg))));
      (* Figure 4 engine: the interpreter. *)
      Test.make ~name:"fig4/interp-tomcatv"
        (Staged.stage (fun () -> ignore (Sim.Interp.run tomcatv)));
      (* Ablation engine: the eager splitting variant. *)
      Test.make ~name:"ablation/phi-splits-tomcatv"
        (Staged.stage
           (alloc Remat.Mode.Briggs_remat_phi_splits Remat.Machine.standard
              tomcatv));
      ]
  in
  let test = Test.make_grouped ~name:"remat" ~fmt:"%s %s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
    in
    let raw_results = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    Analyze.merge ols instances results
  in
  Format.fprintf std "=== Bechamel micro-benchmarks ===@.";
  let results = benchmark () in
  (match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> Format.fprintf std "  (no results)@."
  | Some tbl ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Format.fprintf std "  %-40s %12.0f ns/run@." name est
          | _ -> Format.fprintf std "  %-40s (no estimate)@." name)
        (List.sort (fun (a, _) (b, _) -> String.compare a b) rows));
  Format.fprintf std "@."

let figures which =
  match which with
  | `F1 -> Suite.Figures.fig1 std
  | `F2 -> Suite.Figures.fig2 std
  | `F3 -> Suite.Figures.fig3 std
  | `F4 -> Suite.Figures.fig4 std

let all ~repeats ~jobs () =
  figures `F1;
  figures `F2;
  figures `F3;
  figures `F4;
  table1 ();
  table2 ~repeats ~jobs ();
  scale ~repeats:3 ();
  ablation ();
  baseline ();
  bechamel ()

(* Tiny hand parser: targets and [--flag N] pairs may be interleaved. *)
let () =
  let repeats = ref 10 and jobs = ref 1 in
  let targets = ref [] in
  let int_arg flag = function
    | Some v -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> n
        | _ ->
            Format.eprintf "%s wants a positive integer, got %S@." flag v;
            exit 2)
    | None ->
        Format.eprintf "%s wants an argument@." flag;
        exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--repeats" :: rest ->
        let v, rest =
          match rest with v :: rest -> (Some v, rest) | [] -> (None, [])
        in
        repeats := int_arg "--repeats" v;
        parse rest
    | "--jobs" :: rest ->
        let v, rest =
          match rest with v :: rest -> (Some v, rest) | [] -> (None, [])
        in
        jobs := int_arg "--jobs" v;
        parse rest
    | t :: rest ->
        targets := t :: !targets;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let repeats = !repeats and jobs = !jobs in
  match List.rev !targets with
  | [] -> all ~repeats ~jobs ()
  | targets ->
      List.iter
        (function
          | "table1" -> table1 ()
          | "table2" -> table2 ~repeats ~jobs ()
          | "fig1" -> figures `F1
          | "fig2" -> figures `F2
          | "fig3" -> figures `F3
          | "fig4" -> figures `F4
          | "scale" -> scale ~repeats:(min repeats 3) ()
          | "ablation" -> ablation ()
          | "baseline" -> baseline ()
          | "bechamel" -> bechamel ()
          | other ->
              Format.eprintf
                "unknown target %S (want table1 table2 scale fig1..fig4 \
                 ablation bechamel)@."
                other;
              exit 2)
        targets
