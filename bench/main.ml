(* The benchmark harness: regenerates every table and figure from the
   paper's evaluation (§5) plus the §6 splitting ablation, and runs
   Bechamel micro-benchmarks of the allocator itself (one group per
   table/figure).

   Usage:
     bench/main.exe                run everything
     bench/main.exe table1         spill-cost comparison (Table 1)
     bench/main.exe table2         per-phase allocation times (Table 2)
     bench/main.exe fig1|fig2|fig3|fig4
     bench/main.exe ablation       splitting schemes of section 6
     bench/main.exe bechamel       micro-benchmarks only *)

let std = Format.std_formatter

let table1 () =
  Format.fprintf std
    "=== Table 1: Effects of Rematerialization ===@.\
     (cycles of spill code = dynamic cycles on the standard 16+16 machine@.\
    \ minus cycles on the huge 128+128 machine; columns show the percentage@.\
    \ of the Optimistic cost saved per instruction category)@.@.";
  let rows = Suite.Report.table1 ~only_changed:true () in
  Suite.Report.pp_table1 std rows;
  Format.fprintf std "@."

let table2 () =
  Format.fprintf std
    "=== Table 2: Allocation Times in Seconds ===@.\
     (Old = Chaitin-style rematerialization, New = this paper; averages@.\
    \ over 10 runs; rows are round:phase as in the paper)@.@.";
  let cols = Suite.Report.table2 ~repeats:10 [ "repvid"; "tomcatv"; "twldrv" ] in
  Suite.Report.pp_table2 std cols;
  let json_path = "BENCH_alloc.json" in
  let oc = open_out json_path in
  output_string oc (Suite.Report.table2_json cols);
  output_char oc '\n';
  close_out oc;
  Format.fprintf std "@.(per-phase timings and counters written to %s)@.@."
    json_path

let ablation () =
  Format.fprintf std
    "=== Section 6 ablation: splitting schemes ===@.\
     (spill cycles per allocator variant on the standard machine;@.\
    \ briggs-phi-splits splits at every phi-node as sketched in section 6)@.@.";
  let rows = Suite.Report.ablation () in
  Suite.Report.pp_ablation std rows;
  Format.fprintf std "@."

let baseline () =
  Format.fprintf std
    "=== Local-allocator baseline (the §5.4 reference point) ===@.\
     (total dynamic cycles on the standard machine: the fast local@.\
    \ allocator of non-optimizing compilers vs the global allocators)@.@.";
  Format.fprintf std "%-12s %12s %12s %12s %12s@." "routine" "local"
    "no-remat" "chaitin" "briggs";
  Format.fprintf std "%s@." (String.make 64 '-');
  List.iter
    (fun k ->
      let cfg = Suite.Kernels.cfg_of ~optimize:true k in
      let cycles c = Sim.Counts.cycles (Sim.Interp.run c).Sim.Interp.counts in
      let local =
        cycles (Remat.Local_allocator.run cfg).Remat.Local_allocator.cfg
      in
      let global mode =
        cycles
          (Remat.Allocator.run ~mode ~machine:Remat.Machine.standard cfg)
            .Remat.Allocator.cfg
      in
      Format.fprintf std "%-12s %12d %12d %12d %12d@." k.Suite.Kernels.name
        local
        (global Remat.Mode.No_remat)
        (global Remat.Mode.Chaitin_remat)
        (global Remat.Mode.Briggs_remat))
    Suite.Kernels.all;
  Format.fprintf std "@."

(* --- Bechamel micro-benchmarks: one group per table/figure --- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let fig1_cfg = Suite.Figures.fig1_source () in
  let kernel name = Suite.Kernels.cfg_of (Suite.Kernels.find name) in
  let tomcatv = kernel "tomcatv" in
  let twldrv = kernel "twldrv" in
  let alloc mode machine cfg () =
    ignore (Remat.Allocator.run ~mode ~machine cfg)
  in
  let tests =
    [
      (* Table 1 engine: both allocators end to end. *)
      Test.make ~name:"table1/chaitin-tomcatv"
        (Staged.stage
           (alloc Remat.Mode.Chaitin_remat Remat.Machine.standard tomcatv));
      Test.make ~name:"table1/briggs-tomcatv"
        (Staged.stage
           (alloc Remat.Mode.Briggs_remat Remat.Machine.standard tomcatv));
      (* Table 2 subject: the largest routine. *)
      Test.make ~name:"table2/briggs-twldrv"
        (Staged.stage
           (alloc Remat.Mode.Briggs_remat Remat.Machine.standard twldrv));
      (* Figure 3 engine: renumber with tag propagation. *)
      Test.make ~name:"fig3/renumber-briggs"
        (Staged.stage (fun () ->
             ignore
               (Remat.Renumber.run Remat.Mode.Briggs_remat
                  (Iloc.Cfg.split_critical_edges fig1_cfg))));
      (* Figure 4 engine: the interpreter. *)
      Test.make ~name:"fig4/interp-tomcatv"
        (Staged.stage (fun () -> ignore (Sim.Interp.run tomcatv)));
      (* Ablation engine: the eager splitting variant. *)
      Test.make ~name:"ablation/phi-splits-tomcatv"
        (Staged.stage
           (alloc Remat.Mode.Briggs_remat_phi_splits Remat.Machine.standard
              tomcatv));
    ]
  in
  let test = Test.make_grouped ~name:"remat" ~fmt:"%s %s" tests in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
    in
    let raw_results = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    Analyze.merge ols instances results
  in
  Format.fprintf std "=== Bechamel micro-benchmarks ===@.";
  let results = benchmark () in
  (match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> Format.fprintf std "  (no results)@."
  | Some tbl ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl [] in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Format.fprintf std "  %-40s %12.0f ns/run@." name est
          | _ -> Format.fprintf std "  %-40s (no estimate)@." name)
        (List.sort (fun (a, _) (b, _) -> String.compare a b) rows));
  Format.fprintf std "@."

let figures which =
  match which with
  | `F1 -> Suite.Figures.fig1 std
  | `F2 -> Suite.Figures.fig2 std
  | `F3 -> Suite.Figures.fig3 std
  | `F4 -> Suite.Figures.fig4 std

let all () =
  figures `F1;
  figures `F2;
  figures `F3;
  figures `F4;
  table1 ();
  table2 ();
  ablation ();
  baseline ();
  bechamel ()

let () =
  match Array.to_list Sys.argv with
  | [] | [ _ ] -> all ()
  | _ :: args ->
      List.iter
        (function
          | "table1" -> table1 ()
          | "table2" -> table2 ()
          | "fig1" -> figures `F1
          | "fig2" -> figures `F2
          | "fig3" -> figures `F3
          | "fig4" -> figures `F4
          | "ablation" -> ablation ()
          | "baseline" -> baseline ()
          | "bechamel" -> bechamel ()
          | other ->
              Format.eprintf
                "unknown target %S (want table1 table2 fig1..fig4 ablation \
                 bechamel)@."
                other;
              exit 2)
        args
