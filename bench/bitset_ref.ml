(* The pre-word-parallel bitset, kept verbatim as a benchmark reference.

   This is the byte-at-a-time implementation the allocator shipped with
   before lib/dataflow/bitset.ml was rewritten to operate on 64-bit
   words: every [add]/[mem] pays a bounds check and a [get_uint8], the
   binops loop per byte, and [iter] tests all 8 positions of each
   non-zero byte.  The [bitset/*] Bechamel group in main.ml runs the
   same workloads against this module and the live [Dataflow.Bitset] so
   the speedup of the word-parallel kernels stays measurable across
   revisions.  It is not used by the allocator itself. *)

type t = { words : Bytes.t; capacity : int }

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { words = Bytes.make ((capacity + 7) / 8) '\000'; capacity }

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.capacity)

let add t i =
  check t i;
  let b = Bytes.get_uint8 t.words (i lsr 3) in
  Bytes.set_uint8 t.words (i lsr 3) (b lor (1 lsl (i land 7)))

let mem t i =
  check t i;
  Bytes.get_uint8 t.words (i lsr 3) land (1 lsl (i land 7)) <> 0

let popcount8 =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun b -> tbl.(b)

let cardinal t =
  let n = Bytes.length t.words in
  let c = ref 0 in
  for i = 0 to n - 1 do
    c := !c + popcount8 (Bytes.get_uint8 t.words i)
  done;
  !c

let same_capacity a b op =
  if a.capacity <> b.capacity then
    invalid_arg (Printf.sprintf "Bitset.%s: capacity mismatch" op)

let binop_into name f ~dst src =
  same_capacity dst src name;
  let changed = ref false in
  for i = 0 to Bytes.length dst.words - 1 do
    let old = Bytes.get_uint8 dst.words i in
    let v = f old (Bytes.get_uint8 src.words i) land 0xff in
    if v <> old then (
      Bytes.set_uint8 dst.words i v;
      changed := true)
  done;
  !changed

let union_into ~dst src = binop_into "union_into" ( lor ) ~dst src
let inter_into ~dst src = binop_into "inter_into" ( land ) ~dst src

let diff_into ~dst src =
  binop_into "diff_into" (fun a b -> a land lnot b) ~dst src

let iter f t =
  for i = 0 to Bytes.length t.words - 1 do
    let b = Bytes.get_uint8 t.words i in
    if b <> 0 then
      for j = 0 to 7 do
        if b land (1 lsl j) <> 0 then f ((i lsl 3) + j)
      done
  done

let of_list capacity l =
  let t = create capacity in
  List.iter (add t) l;
  t
