(* Tests for SSA construction, value analysis, destruction, and parallel
   copy sequentialization. *)

module Cfg = Iloc.Cfg
module Reg = Iloc.Reg
module Instr = Iloc.Instr

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let count_phis cfg =
  Cfg.fold_blocks (fun acc b -> acc + List.length b.Iloc.Block.phis) 0 cfg

let ssa_valid cfg =
  match Iloc.Validate.routine ~ssa:true cfg with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "SSA invalid: %s"
        (String.concat "; " (List.map Iloc.Validate.error_to_string es))

let construct_unit =
  [
    tc "straight-line code gets no phis" (fun () ->
        let ssa = Ssa.Construct.run (Testutil.straight ()) in
        ssa_valid ssa;
        check Alcotest.int "phis" 0 (count_phis ssa));
    tc "diamond gets one phi" (fun () ->
        let ssa = Ssa.Construct.run (Testutil.diamond ()) in
        ssa_valid ssa;
        check Alcotest.int "phis" 1 (count_phis ssa));
    tc "counted loop gets pruned phis" (fun () ->
        let ssa = Ssa.Construct.run (Testutil.counted_loop ()) in
        ssa_valid ssa;
        (* i and acc merge at the loop header; t and zero do not (t is
           dead around the back edge, zero is single-def). *)
        check Alcotest.int "phis" 2 (count_phis ssa));
    tc "dead merge is pruned" (fun () ->
        (* x is reassigned in both arms but never used after the join:
           pruned SSA must not create a φ for it. *)
        let src =
          "routine x\n\
           entry:\n\
          \  r1 <- ldi 1\n\
          \  r2 <- ldi 0\n\
          \  cbr r1 a b\n\
           a:\n\
          \  r2 <- ldi 2\n\
          \  jmp join\n\
           b:\n\
          \  r2 <- ldi 3\n\
          \  jmp join\n\
           join:\n\
          \  print r1\n\
          \  ret\n"
        in
        let ssa = Ssa.Construct.run (Iloc.Parser.routine src) in
        ssa_valid ssa;
        check Alcotest.int "phis" 0 (count_phis ssa));
    tc "single static assignment holds on fixtures" (fun () ->
        List.iter
          (fun (_, cfg) ->
            let cfg = Cfg.split_critical_edges cfg in
            ssa_valid (Ssa.Construct.run cfg))
          (Testutil.all_fixed ()));
    tc "already-SSA input rejected" (fun () ->
        let ssa = Ssa.Construct.run (Testutil.diamond ()) in
        try
          ignore (Ssa.Construct.run ssa);
          Alcotest.fail "accepted SSA input"
        with Invalid_argument _ -> ());
    tc "input not mutated" (fun () ->
        let cfg = Testutil.diamond () in
        let before = Iloc.Printer.routine_to_string cfg in
        ignore (Ssa.Construct.run cfg);
        check Alcotest.string "unchanged" before
          (Iloc.Printer.routine_to_string cfg));
  ]

let values_unit =
  [
    tc "value table covers every register" (fun () ->
        let ssa = Ssa.Construct.run (Testutil.diamond ()) in
        let vals = Ssa.Values.analyze ssa in
        check Alcotest.int "count"
          (Reg.Set.cardinal (Cfg.all_regs ssa))
          (Ssa.Values.count vals));
    tc "phi defs recorded" (fun () ->
        let ssa = Ssa.Construct.run (Testutil.diamond ()) in
        let vals = Ssa.Values.analyze ssa in
        let phis = ref 0 in
        for v = 0 to Ssa.Values.count vals - 1 do
          match Ssa.Values.def vals v with
          | Ssa.Values.Def_phi _ -> incr phis
          | Ssa.Values.Def_instr _ -> ()
        done;
        check Alcotest.int "phi values" 1 !phis);
    tc "non-SSA input rejected" (fun () ->
        try
          ignore (Ssa.Values.analyze (Testutil.diamond ()));
          Alcotest.fail "accepted doubly-defined registers"
        with Invalid_argument _ -> ());
  ]

let destruct_unit =
  [
    tc "round trip preserves behaviour (fixtures)" (fun () ->
        List.iter
          (fun (name, cfg) ->
            let split = Cfg.split_critical_edges cfg in
            let ssa = Ssa.Construct.run split in
            let back = Ssa.Destruct.run ssa in
            (match Iloc.Validate.routine back with
            | Ok () -> ()
            | Error es ->
                Alcotest.failf "%s: destructed code invalid: %s" name
                  (String.concat "; "
                     (List.map Iloc.Validate.error_to_string es)));
            Testutil.assert_equiv ~what:(name ^ " ssa round trip") cfg back)
          (Testutil.all_fixed ()));
    tc "critical edge required" (fun () ->
        (* diamond with an un-split critical edge: entry -> join directly
           plus a side block. *)
        let src =
          "routine x\n\
           entry:\n\
          \  r1 <- ldi 1\n\
          \  r2 <- ldi 5\n\
          \  cbr r1 side join\n\
           side:\n\
          \  r2 <- ldi 6\n\
          \  jmp join\n\
           join:\n\
          \  print r2\n\
          \  ret\n"
        in
        let ssa = Ssa.Construct.run (Iloc.Parser.routine src) in
        try
          ignore (Ssa.Destruct.run ssa);
          Alcotest.fail "critical edge accepted"
        with Invalid_argument _ -> ());
  ]

(* --- destruction on colored code (the decoupled pipeline's last phase) --- *)

(* Hand-colored SSA loops exercising the two classic destruction
   hazards.  Registers are "physical" (small ids); [run_colored] must
   lower the φs to edge moves that preserve the observable outcome. *)

let r i = Reg.make i Reg.Int

let run_sim cfg =
  match Iloc.Validate.routine cfg with
  | Error es ->
      Alcotest.failf "destructed routine invalid: %s"
        (String.concat "; " (List.map Iloc.Validate.error_to_string es))
  | Ok () -> Sim.Interp.run cfg

let check_prints what expected outcome =
  let got =
    List.map
      (function Sim.Interp.I n -> n | Sim.Interp.F _ -> Alcotest.fail "float")
      outcome.Sim.Interp.prints
  in
  check (Alcotest.list Alcotest.int) what expected got

(* entry: i0 = 0; loop: i1 = φ(entry:i0, latch:i2); i2 = i1+1;
   exit when i2 = 3, printing i1 — the lost-copy shape: the φ
   destination outlives the back-edge argument's redefinition.  Colors:
   i0,i1 → r1; i2 → r2.  The entry edge's move r1 ← r1 must coalesce;
   the latch's r1 ← r2 must land on the back edge only. *)
let lost_copy_cfg () =
  Cfg.make ~name:"lost_copy"
    [
      Iloc.Block.make ~id:0 ~label:"entry"
        ~body:[ Instr.ldi (r 1) 0 ]
        ~term:(Instr.jmp "loop") ();
      Iloc.Block.make ~id:1 ~label:"loop"
        ~phis:[ Iloc.Phi.make (r 1) [ (0, r 1); (2, r 2) ] ]
        ~body:
          [
            Instr.addi (r 2) (r 1) 1;
            Instr.ldi (r 3) 3;
            Instr.cmp Instr.Lt (r 3) (r 2) (r 3);
          ]
        ~term:(Instr.cbr (r 3) "latch" "exit") ();
      Iloc.Block.make ~id:2 ~label:"latch" ~body:[] ~term:(Instr.jmp "loop") ();
      Iloc.Block.make ~id:3 ~label:"exit"
        ~body:[ Instr.print_ (r 1) ]
        ~term:(Instr.ret (Some (r 1))) ();
    ]

(* entry: a=1,b=2; loop: a,b = φ-swap(a,b) each iteration, three trips,
   then print both — the swap shape: the back edge carries a genuine
   cyclic parallel copy, so destruction needs a scratch. *)
let swap_cfg () =
  Cfg.make ~name:"swap"
    [
      Iloc.Block.make ~id:0 ~label:"entry"
        ~body:[ Instr.ldi (r 1) 1; Instr.ldi (r 2) 2; Instr.ldi (r 3) 0 ]
        ~term:(Instr.jmp "loop") ();
      Iloc.Block.make ~id:1 ~label:"loop"
        ~phis:
          [
            Iloc.Phi.make (r 1) [ (0, r 1); (2, r 2) ];
            Iloc.Phi.make (r 2) [ (0, r 2); (2, r 1) ];
            Iloc.Phi.make (r 3) [ (0, r 3); (2, r 4) ];
          ]
        ~body:
          [
            Instr.addi (r 4) (r 3) 1;
            Instr.ldi (r 5) 4;
            Instr.cmp Instr.Lt (r 5) (r 4) (r 5);
          ]
        ~term:(Instr.cbr (r 5) "latch" "exit") ();
      Iloc.Block.make ~id:2 ~label:"latch" ~body:[] ~term:(Instr.jmp "loop") ();
      Iloc.Block.make ~id:3 ~label:"exit"
        ~body:[ Instr.print_ (r 1); Instr.print_ (r 2) ]
        ~term:(Instr.ret None) ();
    ]

let run_colored_unit =
  let no_temp ~pred:_ _ = None in
  let free_temp ~pred:_ cls = Some (Reg.make 9 cls) in
  let no_slot () = Alcotest.fail "requested a spill slot" in
  [
    tc "lost copy: entry move coalesces, back edge carries the copy"
      (fun () ->
        let cfg = lost_copy_cfg () in
        let stats =
          Ssa.Destruct.run_colored ~temp_for:free_temp ~fresh_slot:no_slot cfg
        in
        check Alcotest.int "coalesced (entry r1<-r1)" 1 stats.Ssa.Destruct.coalesced;
        check Alcotest.int "no cycles" 0 stats.Ssa.Destruct.cycle_temps;
        check Alcotest.int "phis gone" 0 (count_phis cfg);
        (* i1 on exit is the value before the final increment. *)
        check_prints "prints old φ value" [ 2 ] (run_sim cfg));
    tc "swap: cycle broken with the scratch register" (fun () ->
        let cfg = swap_cfg () in
        let stats =
          Ssa.Destruct.run_colored ~temp_for:free_temp ~fresh_slot:no_slot cfg
        in
        check Alcotest.int "one scratch" 1 stats.Ssa.Destruct.cycle_temps;
        check Alcotest.int "no slots" 0 stats.Ssa.Destruct.cycle_slots;
        (* three back edges swap (1,2) three times: (2,1). *)
        check_prints "swapped thrice" [ 2; 1 ] (run_sim cfg));
    tc "swap: no free color falls back to a spill slot" (fun () ->
        let cfg = swap_cfg () in
        let slots = ref 0 in
        let stats =
          Ssa.Destruct.run_colored ~temp_for:no_temp
            ~fresh_slot:(fun () -> incr slots; !slots - 1)
            cfg
        in
        check Alcotest.int "one slot cycle" 1 stats.Ssa.Destruct.cycle_slots;
        check Alcotest.int "slot allocated" 1 !slots;
        let has_spill = ref false in
        Cfg.iter_instrs
          (fun _ i ->
            match i.Iloc.Instr.op with
            | Instr.Spill _ -> has_spill := true
            | _ -> ())
          cfg;
        check Alcotest.bool "spill emitted" true !has_spill;
        check_prints "swapped thrice" [ 2; 1 ] (run_sim cfg));
    tc "identity-only φs need no moves at all" (fun () ->
        let cfg = lost_copy_cfg () in
        (* Recolor the back-edge argument to match the destination: every
           edge move is an identity. *)
        Cfg.iter_blocks
          (fun b ->
            List.iter
              (fun (p : Iloc.Phi.t) ->
                p.Iloc.Phi.args <-
                  List.map (fun (pr, _) -> (pr, p.Iloc.Phi.dst)) p.Iloc.Phi.args)
              b.Iloc.Block.phis)
          cfg;
        let stats =
          Ssa.Destruct.run_colored ~temp_for:no_temp ~fresh_slot:no_slot cfg
        in
        check Alcotest.int "all coalesced" 2 stats.Ssa.Destruct.coalesced;
        let copies = ref 0 in
        Cfg.iter_instrs
          (fun _ i -> if Instr.is_copy i then incr copies)
          cfg;
        check Alcotest.int "no copies inserted" 0 !copies);
  ]

(* --- parallel copies --- *)

let seq_moves moves =
  (* interpret a list of sequential copies over an environment *)
  let env = Hashtbl.create 8 in
  let get r = Option.value (Hashtbl.find_opt env r) ~default:(Reg.to_string r) in
  List.iter (fun (d, s) -> Hashtbl.replace env d (get s)) moves;
  get

let parallel_copy_unit =
  let temp_supply () =
    let s = Reg.Supply.create ~start:100 () in
    fun cls -> Reg.Supply.fresh s cls
  in
  let r i = Reg.make i Reg.Int in
  [
    tc "swap uses a temporary" (fun () ->
        let moves = [ (r 1, r 2); (r 2, r 1) ] in
        let seq = Ssa.Parallel_copy.sequentialize moves ~temp:(temp_supply ()) in
        check Alcotest.int "three copies" 3 (List.length seq);
        let get = seq_moves seq in
        check Alcotest.string "r1 gets old r2" "r2" (get (r 1));
        check Alcotest.string "r2 gets old r1" "r1" (get (r 2)));
    tc "three-cycle" (fun () ->
        let moves = [ (r 1, r 2); (r 2, r 3); (r 3, r 1) ] in
        let seq = Ssa.Parallel_copy.sequentialize moves ~temp:(temp_supply ()) in
        let get = seq_moves seq in
        check Alcotest.string "r1" "r2" (get (r 1));
        check Alcotest.string "r2" "r3" (get (r 2));
        check Alcotest.string "r3" "r1" (get (r 3)));
    tc "chain needs no temporary" (fun () ->
        let moves = [ (r 1, r 2); (r 2, r 3) ] in
        let seq = Ssa.Parallel_copy.sequentialize moves ~temp:(temp_supply ()) in
        check Alcotest.int "two copies" 2 (List.length seq);
        let get = seq_moves seq in
        check Alcotest.string "r1" "r2" (get (r 1));
        check Alcotest.string "r2" "r3" (get (r 2)));
    tc "self-moves dropped" (fun () ->
        let seq =
          Ssa.Parallel_copy.sequentialize [ (r 1, r 1) ] ~temp:(temp_supply ())
        in
        check Alcotest.int "empty" 0 (List.length seq));
    tc "duplicate destinations rejected" (fun () ->
        try
          ignore
            (Ssa.Parallel_copy.sequentialize
               [ (r 1, r 2); (r 1, r 3) ]
               ~temp:(temp_supply ()));
          Alcotest.fail "duplicate destination accepted"
        with Invalid_argument _ -> ());
  ]

(* qcheck: random permutations + fresh sources sequentialize correctly *)
let parallel_copy_prop =
  QCheck.Test.make ~count:500 ~name:"parallel copy semantics preserved"
    QCheck.(
      list_of_size (Gen.int_bound 8) (pair (int_bound 7) (int_bound 7)))
    (fun raw_moves ->
      (* dedupe destinations to make the parallel copy well-formed *)
      let seen = Hashtbl.create 8 in
      let moves =
        List.filter_map
          (fun (d, s) ->
            if Hashtbl.mem seen d then None
            else begin
              Hashtbl.add seen d ();
              Some (Reg.make d Reg.Int, Reg.make s Reg.Int)
            end)
          raw_moves
      in
      let supply = Reg.Supply.create ~start:100 () in
      let seq =
        Ssa.Parallel_copy.sequentialize moves ~temp:(fun cls ->
            Reg.Supply.fresh supply cls)
      in
      let get = seq_moves seq in
      List.for_all
        (fun (d, s) -> String.equal (get d) (Reg.to_string s))
        moves)

(* SSA round trip on random programs *)
let ssa_roundtrip_prop =
  QCheck.Test.make ~count:80 ~name:"construct/destruct preserves behaviour"
    Testutil.Gen_prog.arbitrary_cfg
    (fun cfg ->
      let split = Cfg.split_critical_edges cfg in
      let ssa = Ssa.Construct.run split in
      (match Iloc.Validate.routine ~ssa:true ssa with
      | Ok () -> ()
      | Error es ->
          QCheck.Test.fail_reportf "SSA invalid: %s"
            (String.concat "; " (List.map Iloc.Validate.error_to_string es)));
      let back = Ssa.Destruct.run ssa in
      Sim.Interp.outcome_equal (Sim.Interp.run cfg) (Sim.Interp.run back))

(* every use of an SSA value is dominated by its definition *)
let ssa_dominance_prop =
  QCheck.Test.make ~count:80 ~name:"SSA uses dominated by defs"
    Testutil.Gen_prog.arbitrary_cfg
    (fun cfg ->
      let split = Cfg.split_critical_edges cfg in
      let ssa = Ssa.Construct.run split in
      let dom = Dataflow.Dominance.compute ssa in
      let vals = Ssa.Values.analyze ssa in
      let def_block r =
        match Ssa.Values.def_of_reg vals r with
        | Ssa.Values.Def_instr { block; _ } | Ssa.Values.Def_phi { block; _ } ->
            block
      in
      let ok = ref true in
      Cfg.iter_blocks
        (fun b ->
          (* φ argument for predecessor p must be defined in a block
             dominating p. *)
          List.iter
            (fun (p : Iloc.Phi.t) ->
              List.iter
                (fun (pred, a) ->
                  if not (Dataflow.Dominance.dominates dom (def_block a) pred)
                  then ok := false)
                p.Iloc.Phi.args)
            b.Iloc.Block.phis;
          Iloc.Block.iter_instrs
            (fun i ->
              List.iter
                (fun u ->
                  if
                    not
                      (Dataflow.Dominance.dominates dom (def_block u)
                         b.Iloc.Block.id)
                  then ok := false)
                (Instr.uses i))
            b)
        ssa;
      !ok)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ parallel_copy_prop; ssa_roundtrip_prop; ssa_dominance_prop ]

let () =
  Alcotest.run "ssa"
    [
      ("construct", construct_unit);
      ("values", values_unit);
      ("destruct", destruct_unit);
      ("destruct-colored", run_colored_unit);
      ("parallel-copy", parallel_copy_unit);
      ("properties", props);
    ]
