(* Tests for lib/serve: framing robustness (nothing a peer sends raises),
   the protocol codec, the LRU memo table's exact bounds and counters,
   wave handling (cold / hit / same-wave dedup / probe / structured
   errors), incremental edits (phase stats prove no full rebuild, output
   bytes prove equivalence with cold allocation), load-generator
   determinism across job counts, and a live client/server conversation
   over pipes. *)

module Frame = Serve.Frame
module Protocol = Serve.Protocol
module Cache = Serve.Cache
module Server = Serve.Server
module Client = Serve.Client
module Loadgen = Serve.Loadgen
module Allocator = Remat.Allocator

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* A pipe carrying [bytes]; returns the read end (write end closed, so
   the reader sees EOF after the payload).  Keep payloads comfortably
   under the kernel pipe buffer — there is no reader draining yet. *)
let pipe_with bytes =
  assert (String.length bytes < 60_000);
  let r, w = Unix.pipe () in
  Frame.write_all w bytes;
  Unix.close w;
  r

let with_fd fd f = Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> f fd)

(* --- framing --- *)

let frame_tests =
  [
    tc "frames round trip in order, then clean EOF" (fun () ->
        let payloads = [ ""; "a"; String.make 40_000 'x'; "last" ] in
        let b = Buffer.create 16 in
        List.iter (Frame.encode b) payloads;
        with_fd (pipe_with (Buffer.contents b)) (fun fd ->
            let r = Frame.reader fd in
            List.iter
              (fun p ->
                match Frame.next r with
                | Frame.Frame got -> check Alcotest.string "payload" p got
                | _ -> Alcotest.fail "expected a frame")
              payloads;
            check Alcotest.bool "eof" true (Frame.next r = Frame.End_of_input);
            check Alcotest.bool "eof again" true
              (Frame.next r = Frame.End_of_input)));
    tc "EOF inside a payload is Corrupt" (fun () ->
        let whole = Frame.to_string "hello world" in
        let cut = String.sub whole 0 (String.length whole - 3) in
        with_fd (pipe_with cut) (fun fd ->
            let r = Frame.reader fd in
            match Frame.next r with
            | Frame.Corrupt _ -> ()
            | _ -> Alcotest.fail "expected Corrupt"));
    tc "EOF inside the length prefix is Corrupt" (fun () ->
        with_fd (pipe_with "\x00\x00") (fun fd ->
            let r = Frame.reader fd in
            match Frame.next r with
            | Frame.Corrupt _ -> ()
            | _ -> Alcotest.fail "expected Corrupt"));
    tc "oversized length prefix is Corrupt, and the reader stays corrupt"
      (fun () ->
        let b = Buffer.create 16 in
        Buffer.add_string b "\x00\x10\x00\x00";
        (* 1 MiB claim *)
        Buffer.add_string b "some bytes";
        with_fd (pipe_with (Buffer.contents b)) (fun fd ->
            let r = Frame.reader ~max_frame:1024 fd in
            (match Frame.next r with
            | Frame.Corrupt _ -> ()
            | _ -> Alcotest.fail "expected Corrupt");
            match Frame.next r with
            | Frame.Corrupt _ -> ()
            | _ -> Alcotest.fail "poisoned reader must stay Corrupt"));
    tc "garbage prefix decoding to a giant length is Corrupt" (fun () ->
        with_fd (pipe_with "\xff\xff\xff\xff trailing garbage") (fun fd ->
            let r = Frame.reader fd in
            match Frame.next r with
            | Frame.Corrupt _ -> ()
            | _ -> Alcotest.fail "expected Corrupt"));
    tc "poll returns None on an empty pipe, then sees a written frame"
      (fun () ->
        let rd, wr = Unix.pipe () in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close rd with _ -> ());
            try Unix.close wr with _ -> ())
          (fun () ->
            let r = Frame.reader rd in
            check Alcotest.bool "empty" true (Frame.poll r = None);
            Frame.write_frame wr "ping";
            (match Frame.poll r with
            | Some (Frame.Frame "ping") -> ()
            | _ -> Alcotest.fail "expected the frame");
            check Alcotest.bool "drained" true (Frame.poll r = None)));
    tc "decode_all mirrors the reader" (fun () ->
        let b = Buffer.create 16 in
        List.iter (Frame.encode b) [ "x"; "yz" ];
        (match Frame.decode_all (Buffer.contents b) with
        | Ok [ "x"; "yz" ] -> ()
        | _ -> Alcotest.fail "expected both payloads");
        (match Frame.decode_all "" with
        | Ok [] -> ()
        | _ -> Alcotest.fail "empty input has no frames");
        (match Frame.decode_all (String.sub (Frame.to_string "abc") 0 5) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "truncation must not decode");
        match Frame.decode_all ~max_frame:4 (Frame.to_string "too long") with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "oversized must not decode");
  ]

(* --- protocol --- *)

let req_roundtrip r =
  match Protocol.parse_request (Protocol.encode_request r) with
  | Ok r' -> r' = r
  | Error m -> Alcotest.failf "request did not round trip: %s" m

let resp_roundtrip r =
  match Protocol.parse_response (Protocol.encode_response r) with
  | Ok r' -> r' = r
  | Error m -> Alcotest.failf "response did not round trip: %s" m

let protocol_tests =
  let cfg = Protocol.standard_config in
  let stats =
    { Protocol.rounds = 3; full_builds = 2; liveness_runs = 2; spilled = 1 }
  in
  [
    tc "requests round trip" (fun () ->
        List.iter
          (fun r -> check Alcotest.bool "round trip" true (req_roundtrip r))
          [
            Protocol.Alloc { config = cfg; text = "routine f\nentry:\n  ret\n" };
            Protocol.Probe { config = cfg; hash = "abcd" };
            Protocol.Edit
              {
                config = { cfg with k_int = 4; k_float = 3 };
                base = "ffff";
                text = "routine g\nentry:\n  ret\n";
              };
            Protocol.Stats;
            Protocol.Shutdown;
          ]);
    tc "responses round trip" (fun () ->
        List.iter
          (fun r -> check Alcotest.bool "round trip" true (resp_roundtrip r))
          [
            Protocol.Allocated
              {
                hash = "beef";
                source = Protocol.Incremental;
                stats;
                text = "routine f\nentry:\n  ret\n";
              };
            Protocol.Absent { hash = "beef" };
            Protocol.Cache_stats
              {
                hits = 1;
                misses = 2;
                evictions = 3;
                insertions = 4;
                entries = 5;
                capacity = 6;
              };
            Protocol.Err
              { kind = Protocol.Alloc_error; msg = "k too small\nreally" };
            Protocol.Bye;
          ]);
    tc "malformed payloads are Errors, never exceptions" (fun () ->
        List.iter
          (fun s ->
            match Protocol.parse_request s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted garbage %S" s)
          [
            "";
            "garbage";
            "ralloc/0 alloc\n";
            "ralloc/1 frobnicate\n";
            "ralloc/1 alloc\nmode briggs\nk-int 16\nk-float 16\n";
            (* no body *)
            "ralloc/1 alloc\nmode nonsense\nk-int 16\nk-float 16\n\nret";
            "ralloc/1 alloc\nmode briggs\nk-int 1\nk-float 16\n\nret";
            (* k too small *)
            "ralloc/1 alloc\nmode briggs\nk-int x\nk-float 16\n\nret";
            "ralloc/1 probe\nmode briggs\nk-int 16\nk-float 16\n";
            (* no hash *)
          ]);
    tc "cache key separates hash, mode and register counts" (fun () ->
        let base = Protocol.cache_key ~hash:"h" cfg in
        check Alcotest.bool "mode" true
          (base
          <> Protocol.cache_key ~hash:"h"
               { cfg with mode = Remat.Mode.Chaitin_remat });
        check Alcotest.bool "k" true
          (base <> Protocol.cache_key ~hash:"h" { cfg with k_int = 8 });
        check Alcotest.bool "hash" true
          (base <> Protocol.cache_key ~hash:"g" cfg));
  ]

(* --- LRU cache --- *)

let cache_tests =
  [
    tc "capacity bound is exact and eviction order is LRU" (fun () ->
        let c = Cache.create ~capacity:3 in
        List.iter (fun k -> Cache.insert c k k) [ "a"; "b"; "c"; "d"; "e" ];
        check Alcotest.int "length" 3 (Cache.length c);
        check
          (Alcotest.list Alcotest.string)
          "most recent first" [ "e"; "d"; "c" ] (Cache.keys_mru c);
        let s = Cache.stats c in
        check Alcotest.int "insertions" 5 s.Cache.insertions;
        check Alcotest.int "evictions" 2 s.Cache.evictions;
        check Alcotest.bool "a gone" true (Cache.find c "a" = None);
        check Alcotest.bool "b gone" true (Cache.find c "b" = None));
    tc "find renews recency; peek and mem do not" (fun () ->
        let c = Cache.create ~capacity:3 in
        List.iter (fun k -> Cache.insert c k k) [ "a"; "b"; "c" ];
        ignore (Cache.find c "a");
        ignore (Cache.peek c "b");
        check Alcotest.bool "mem" true (Cache.mem c "b");
        Cache.insert c "d" "d";
        (* b was least recently used despite the peek *)
        check Alcotest.bool "b evicted" true (Cache.peek c "b" = None);
        check Alcotest.bool "a kept" true (Cache.peek c "a" <> None));
    tc "hit and miss counters are exact; peek counts nothing" (fun () ->
        let c = Cache.create ~capacity:2 in
        Cache.insert c "a" 1;
        ignore (Cache.find c "a");
        ignore (Cache.find c "a");
        ignore (Cache.find c "nope");
        ignore (Cache.peek c "a");
        ignore (Cache.peek c "nope");
        let s = Cache.stats c in
        check Alcotest.int "hits" 2 s.Cache.hits;
        check Alcotest.int "misses" 1 s.Cache.misses;
        check Alcotest.int "insertions" 1 s.Cache.insertions;
        check Alcotest.int "evictions" 0 s.Cache.evictions);
    tc "overwrite neither grows nor evicts" (fun () ->
        let c = Cache.create ~capacity:2 in
        Cache.insert c "a" 1;
        Cache.insert c "b" 2;
        Cache.insert c "a" 3;
        check Alcotest.int "length" 2 (Cache.length c);
        check Alcotest.int "evictions" 0 (Cache.stats c).Cache.evictions;
        check Alcotest.bool "new value" true (Cache.peek c "a" = Some 3);
        check
          (Alcotest.list Alcotest.string)
          "overwrite renews" [ "a"; "b" ] (Cache.keys_mru c));
    tc "capacity below one is rejected" (fun () ->
        match Cache.create ~capacity:0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

(* --- waves --- *)

let routine_of_seed seed =
  Iloc.Printer.routine_to_string (Fuzz.Gen.generate seed)

let alloc_req ?(config = Protocol.standard_config) text =
  Ok (Protocol.Alloc { config; text })

let with_server ?config f =
  let s = Server.create ?config () in
  Fun.protect ~finally:(fun () -> Server.shutdown s) (fun () -> f s)

(* Exactly the cold allocation the server performs for
   [Protocol.standard_config]. *)
let allocate_direct_res text =
  Allocator.allocate
    ~machine:(Protocol.machine_of_config Protocol.standard_config)
    (Iloc.Parser.routine text)

let allocate_direct text =
  Iloc.Printer.routine_to_string (allocate_direct_res text).Allocator.cfg

type allocated = {
  hash : string;
  source : Protocol.source;
  stats : Protocol.alloc_stats;
  text : string;
}

let expect_allocated = function
  | Protocol.Allocated { hash; source; stats; text } ->
      { hash; source; stats; text }
  | r ->
      Alcotest.failf "expected Allocated, got %s" (Protocol.encode_response r)

let wave_tests =
  [
    tc "cold then hit, bytes identical, matching direct allocation" (fun () ->
        with_server (fun s ->
            let text = routine_of_seed 7 in
            let r1 =
              expect_allocated
                (List.hd (Server.handle_batch s [ alloc_req text ]))
            in
            check Alcotest.bool "cold" true (r1.source = Protocol.Cold);
            check Alcotest.string "matches direct allocation"
              (allocate_direct text) r1.text;
            let r2 =
              expect_allocated
                (List.hd (Server.handle_batch s [ alloc_req text ]))
            in
            check Alcotest.bool "hit" true (r2.source = Protocol.Hit);
            check Alcotest.string "hit bytes = cold bytes" r1.text r2.text;
            check Alcotest.string "same hash" r1.hash r2.hash));
    tc "identical requests in one wave share the work" (fun () ->
        with_server (fun s ->
            let text = routine_of_seed 8 in
            match Server.handle_batch s [ alloc_req text; alloc_req text ] with
            | [ a; b ] ->
                let a = expect_allocated a and b = expect_allocated b in
                check Alcotest.bool "first cold" true (a.source = Protocol.Cold);
                check Alcotest.bool "second hit" true (b.source = Protocol.Hit);
                check Alcotest.string "same bytes" a.text b.text;
                check Alcotest.int "one insertion" 1
                  (Server.cache_counters s).Protocol.insertions
            | _ -> Alcotest.fail "expected two responses"));
    tc "probe misses then hits, never allocating on a miss" (fun () ->
        with_server (fun s ->
            let text = routine_of_seed 9 in
            let hash = Iloc.Cfg.content_hash (Iloc.Parser.routine text) in
            let probe =
              Ok (Protocol.Probe { config = Protocol.standard_config; hash })
            in
            (match Server.handle_batch s [ probe ] with
            | [ Protocol.Absent a ] -> check Alcotest.string "hash" hash a.hash
            | _ -> Alcotest.fail "expected Absent");
            ignore (Server.handle_batch s [ alloc_req text ]);
            match Server.handle_batch s [ probe ] with
            | [ Protocol.Allocated a ] ->
                check Alcotest.bool "hit" true (a.source = Protocol.Hit)
            | _ -> Alcotest.fail "expected Allocated"));
    tc "parse failures become structured errors in position" (fun () ->
        with_server (fun s ->
            let good = routine_of_seed 10 in
            match
              Server.handle_batch s
                [
                  alloc_req "routine broken\nentry:\n  r1 <- frob r2\n";
                  Error "bad frame";
                  alloc_req good;
                ]
            with
            | [ Protocol.Err e1; Protocol.Err e2; Protocol.Allocated _ ] ->
                check Alcotest.bool "parse kind" true
                  (e1.kind = Protocol.Parse_error);
                check Alcotest.bool "frame kind" true
                  (e2.kind = Protocol.Parse_error)
            | _ -> Alcotest.fail "expected Err, Err, Allocated"));
    tc "impossible register counts come back as alloc errors" (fun () ->
        with_server (fun s ->
            let config =
              { Protocol.standard_config with k_int = 2; k_float = 2 }
            in
            let text =
              Iloc.Printer.routine_to_string
                (Fuzz.Gen.generate ~config:Fuzz.Gen.high_pressure 1)
            in
            match Server.handle_batch s [ alloc_req ~config text ] with
            | [ Protocol.Err e ] ->
                check Alcotest.bool "alloc kind" true
                  (e.kind = Protocol.Alloc_error)
            | [ Protocol.Allocated _ ] ->
                (* two registers per class might still suffice — then the
                   wave simply succeeded; nothing to assert *)
                ()
            | _ -> Alcotest.fail "expected one response"));
    tc "stats and shutdown answer in request order" (fun () ->
        with_server (fun s ->
            ignore (Server.handle_batch s [ alloc_req (routine_of_seed 11) ]);
            match
              Server.handle_batch s [ Ok Protocol.Stats; Ok Protocol.Shutdown ]
            with
            | [ Protocol.Cache_stats cs; Protocol.Bye ] ->
                check Alcotest.int "entries" 1 cs.Protocol.entries;
                check Alcotest.int "insertions" 1 cs.Protocol.insertions
            | _ -> Alcotest.fail "expected Cache_stats, Bye"));
  ]

(* --- incremental edits --- *)

let incremental_tests =
  [
    tc "edits reuse the snapshot: no full rebuild, cold-identical bytes"
      (fun () ->
        with_server (fun s ->
            let incremental = ref 0 in
            for seed = 0 to 14 do
              let base_cfg = Fuzz.Gen.generate seed in
              let base_hash = Iloc.Cfg.content_hash base_cfg in
              ignore
                (Server.handle_batch s
                   [
                     alloc_req (Iloc.Printer.routine_to_string base_cfg);
                   ]);
              let edited = Fuzz.Gen.mutate ~seed:(1000 + seed) base_cfg in
              let edited_text = Iloc.Printer.routine_to_string edited in
              let resp =
                expect_allocated
                  (List.hd
                     (Server.handle_batch s
                        [
                          Ok
                            (Protocol.Edit
                               {
                                 config = Protocol.standard_config;
                                 base = base_hash;
                                 text = edited_text;
                               });
                        ]))
              in
              let cold_res = allocate_direct_res edited_text in
              let cold =
                Iloc.Printer.routine_to_string cold_res.Allocator.cfg
              in
              check Alcotest.string
                (Printf.sprintf "seed %d: edit output = cold output" seed)
                cold resp.text;
              match resp.source with
              | Protocol.Incremental ->
                  incr incremental;
                  (* The incremental signature: round 1 reused the primed
                     graph, so only the spill rounds (if any) rebuilt
                     from scratch — one full build fewer than the same
                     allocation run cold.  (Liveness may still be
                     recomputed mid-round when coalescing rewrites the
                     routine, on either path, so only the build count is
                     an exact round-1 marker.) *)
                  check Alcotest.int
                    (Printf.sprintf "seed %d: rounds agree with cold" seed)
                    cold_res.Allocator.rounds resp.stats.Protocol.rounds;
                  check Alcotest.int
                    (Printf.sprintf "seed %d: full builds" seed)
                    (resp.stats.Protocol.rounds - 1)
                    resp.stats.Protocol.full_builds;
                  check Alcotest.bool
                    (Printf.sprintf "seed %d: fewer liveness runs than cold"
                       seed)
                    true
                    (resp.stats.Protocol.liveness_runs
                    < Remat.Stats.counter_total cold_res.Allocator.stats
                        Remat.Stats.Liveness_runs)
              | Protocol.Cold -> () (* structural edit: legitimate fallback *)
              | Protocol.Hit ->
                  (* The mutator admitted no edit and returned a plain
                     copy: its content hash equals the cached base, and a
                     hit is exactly right. *)
                  check Alcotest.string
                    (Printf.sprintf "seed %d: identity edit" seed)
                    (Iloc.Printer.routine_to_string base_cfg)
                    edited_text
            done;
            check Alcotest.bool
              (Printf.sprintf "some edits took the incremental path (%d/15)"
                 !incremental)
              true
              (!incremental >= 5)));
    tc "editing against an unknown base falls back cold" (fun () ->
        with_server (fun s ->
            let text = routine_of_seed 21 in
            let resp =
              expect_allocated
                (List.hd
                   (Server.handle_batch s
                      [
                        Ok
                          (Protocol.Edit
                             {
                               config = Protocol.standard_config;
                               base = "not a known hash";
                               text;
                             });
                      ]))
            in
            check Alcotest.bool "cold" true (resp.source = Protocol.Cold)));
  ]

(* --- determinism across job counts --- *)

let determinism_tests =
  [
    tc "loadgen digests are identical for -j1 and -j4" (fun () ->
        let cfg =
          {
            Loadgen.default with
            requests = 80;
            distinct = 8;
            wave = 16;
            seed = 5;
          }
        in
        let a = Loadgen.run { cfg with jobs = 1 } in
        let b = Loadgen.run { cfg with jobs = 4 } in
        check Alcotest.string "digest" a.Loadgen.s_output_digest
          b.Loadgen.s_output_digest;
        check Alcotest.int "errors" 0 a.Loadgen.s_errors;
        check Alcotest.int "rebuilds" 0 a.Loadgen.s_incremental_rebuilds;
        check Alcotest.int "hits agree" a.Loadgen.s_hits b.Loadgen.s_hits;
        check Alcotest.bool "cache does something" true
          (a.Loadgen.s_hit_rate > 0.));
  ]

(* --- a live conversation over pipes --- *)

(* Client and server each own one direction of a pipe pair; the server
   loop runs in its own domain, exactly as `ralloc serve` runs it over
   stdio. *)
let with_connection ?config f =
  let c2s_r, c2s_w = Unix.pipe () in
  let s2c_r, s2c_w = Unix.pipe () in
  let server = Server.create ?config () in
  let d =
    Domain.spawn (fun () ->
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close c2s_r with _ -> ());
            try Unix.close s2c_w with _ -> ())
          (fun () -> Server.serve_fds server ~in_fd:c2s_r ~out_fd:s2c_w))
  in
  let client = Client.of_fds ~in_fd:s2c_r ~out_fd:c2s_w in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close c2s_w with _ -> ());
      Domain.join d;
      (try Unix.close s2c_r with _ -> ());
      Server.shutdown server)
    (fun () -> f client c2s_w)

let expect_ok = function
  | Ok r -> r
  | Error m -> Alcotest.failf "client error: %s" m

let live_tests =
  [
    tc "alloc, probe, stats, shutdown over a live connection" (fun () ->
        with_connection (fun client _raw ->
            let text = routine_of_seed 31 in
            let r =
              expect_ok
                (Client.request client
                   (Protocol.Alloc
                      { config = Protocol.standard_config; text }))
            in
            let a = expect_allocated r in
            check Alcotest.bool "cold" true (a.source = Protocol.Cold);
            (match
               expect_ok
                 (Client.request client
                    (Protocol.Probe
                       { config = Protocol.standard_config; hash = a.hash }))
             with
            | Protocol.Allocated h ->
                check Alcotest.bool "hit" true (h.source = Protocol.Hit);
                check Alcotest.string "bytes" a.text h.text
            | _ -> Alcotest.fail "expected a probe hit");
            (match expect_ok (Client.request client Protocol.Stats) with
            | Protocol.Cache_stats cs ->
                check Alcotest.int "entries" 1 cs.Protocol.entries
            | _ -> Alcotest.fail "expected Cache_stats");
            match expect_ok (Client.request client Protocol.Shutdown) with
            | Protocol.Bye -> ()
            | _ -> Alcotest.fail "expected Bye"));
    tc "a garbage frame draws a structured error, then the server closes"
      (fun () ->
        with_connection (fun client raw ->
            (* A length prefix claiming ~4 GiB: unrecoverable framing. *)
            Frame.write_all raw "\xff\xff\xff\xff";
            (match Client.receive client with
            | Ok (Protocol.Err e) ->
                check Alcotest.bool "protocol kind" true
                  (e.kind = Protocol.Protocol_error)
            | other ->
                Alcotest.failf "expected a protocol error, got %s"
                  (match other with
                  | Ok r -> Protocol.encode_response r
                  | Error m -> m));
            match Client.receive client with
            | Error _ -> () (* connection closed: the reader saw EOF *)
            | Ok r ->
                Alcotest.failf "expected EOF, got %s"
                  (Protocol.encode_response r)));
    tc "EOF mid-frame shuts the connection down cleanly" (fun () ->
        with_connection (fun _client raw ->
            (* Half a frame, then the finally-block closes the pipe: the
               server must answer with an error or just close — and the
               Domain.join in the harness proves it exits either way. *)
            let whole = Frame.to_string "ralloc/1 stats\n" in
            Frame.write_all raw (String.sub whole 0 (String.length whole - 4))));
    tc "a well-framed garbage payload draws an Err; the connection survives"
      (fun () ->
        with_connection (fun client raw ->
            (* Correct framing, nonsense payload: a structured parse
               error, and the stream stays synchronized for the next
               request. *)
            Frame.write_frame raw "not a ralloc payload";
            (match expect_ok (Client.receive client) with
            | Protocol.Err e ->
                check Alcotest.bool "parse kind" true
                  (e.kind = Protocol.Parse_error)
            | _ -> Alcotest.fail "expected Err");
            match expect_ok (Client.request client Protocol.Stats) with
            | Protocol.Cache_stats _ -> ()
            | _ -> Alcotest.fail "expected Cache_stats"));
  ]

let () =
  Alcotest.run "serve"
    [
      ("frame", frame_tests);
      ("protocol", protocol_tests);
      ("cache", cache_tests);
      ("waves", wave_tests);
      ("incremental", incremental_tests);
      ("determinism", determinism_tests);
      ("live", live_tests);
    ]
