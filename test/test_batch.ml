(* The multicore batch pool: task-order results, exception propagation,
   and the property the `ralloc batch -j N` front end advertises — the
   allocations of the whole kernel suite are byte-identical no matter
   how many domains run them. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let pool_unit =
  [
    tc "results in task order" (fun () ->
        let tasks = Array.init 100 (fun i -> i) in
        let res = Suite.Pool.run ~jobs:4 (fun i -> i * i) tasks in
        check Alcotest.int "length" 100 (Array.length res);
        Array.iteri
          (fun i v -> check Alcotest.int (Printf.sprintf "slot %d" i) (i * i) v)
          res);
    tc "more jobs than tasks" (fun () ->
        let res = Suite.Pool.run ~jobs:16 (fun i -> i + 1) [| 1; 2; 3 |] in
        check (Alcotest.list Alcotest.int) "results" [ 2; 3; 4 ]
          (Array.to_list res));
    tc "empty task array" (fun () ->
        check Alcotest.int "length" 0
          (Array.length (Suite.Pool.run ~jobs:8 (fun x -> x) [||])));
    tc "jobs one runs in the calling domain" (fun () ->
        let self = Domain.self () in
        let res =
          Suite.Pool.run ~jobs:1 (fun _ -> Domain.self ()) [| (); (); () |]
        in
        Array.iter (fun d -> check Alcotest.bool "same domain" true (d = self)) res);
    tc "exception propagates after joining" (fun () ->
        try
          ignore
            (Suite.Pool.run ~jobs:3
               (fun i -> if i = 5 then failwith "boom" else i)
               (Array.init 10 Fun.id));
          Alcotest.fail "expected a Failure"
        with Failure m -> check Alcotest.string "message" "boom" m);
    tc "default_jobs is positive" (fun () ->
        check Alcotest.bool "positive" true (Suite.Pool.default_jobs () >= 1));
  ]

(* Allocate every suite kernel the way `ralloc batch --kernels -O` does
   and render the result; any scheduling-dependent behavior in the
   allocator (iteration over shared mutable state, hash-order effects)
   would show up as a diff between the -j 1 and -j 4 outputs. *)
let allocate_all jobs =
  Suite.Pool.run ~jobs
    (fun k ->
      let cfg = Suite.Kernels.cfg_of ~optimize:true k in
      let res =
        Remat.Allocator.run ~mode:Remat.Mode.Briggs_remat
          ~machine:Remat.Machine.standard cfg
      in
      Iloc.Printer.routine_to_string res.Remat.Allocator.cfg)
    (Array.of_list Suite.Kernels.all)

let determinism_unit =
  [
    tc "kernel suite is byte-identical under -j1 and -j4" (fun () ->
        let seq = allocate_all 1 and par = allocate_all 4 in
        check Alcotest.int "same count" (Array.length seq) (Array.length par);
        Array.iteri
          (fun i s ->
            check Alcotest.string
              (List.nth Suite.Kernels.all i).Suite.Kernels.name s par.(i))
          seq);
  ]

let () =
  Alcotest.run "batch"
    [ ("pool", pool_unit); ("determinism", determinism_unit) ]
