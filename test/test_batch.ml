(* The multicore batch pool: task-order results, exception propagation,
   and the property the `ralloc batch -j N` front end advertises — the
   allocations of the whole kernel suite are byte-identical no matter
   how many domains run them. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let pool_unit =
  [
    tc "results in task order" (fun () ->
        let tasks = Array.init 100 (fun i -> i) in
        let res = Suite.Pool.run ~jobs:4 (fun i -> i * i) tasks in
        check Alcotest.int "length" 100 (Array.length res);
        Array.iteri
          (fun i v -> check Alcotest.int (Printf.sprintf "slot %d" i) (i * i) v)
          res);
    tc "more jobs than tasks" (fun () ->
        let res = Suite.Pool.run ~jobs:16 (fun i -> i + 1) [| 1; 2; 3 |] in
        check (Alcotest.list Alcotest.int) "results" [ 2; 3; 4 ]
          (Array.to_list res));
    tc "empty task array" (fun () ->
        check Alcotest.int "length" 0
          (Array.length (Suite.Pool.run ~jobs:8 (fun x -> x) [||])));
    tc "jobs one runs in the calling domain" (fun () ->
        let self = Domain.self () in
        let res =
          Suite.Pool.run ~jobs:1 (fun _ -> Domain.self ()) [| (); (); () |]
        in
        Array.iter (fun d -> check Alcotest.bool "same domain" true (d = self)) res);
    tc "exception propagates after joining" (fun () ->
        try
          ignore
            (Suite.Pool.run ~jobs:3
               (fun i -> if i = 5 then failwith "boom" else i)
               (Array.init 10 Fun.id));
          Alcotest.fail "expected a Failure"
        with Failure m -> check Alcotest.string "message" "boom" m);
    tc "default_jobs is positive" (fun () ->
        check Alcotest.bool "positive" true (Suite.Pool.default_jobs () >= 1));
  ]

(* The persistent pool behind `ralloc serve`: domains outlive batches,
   results stay in task order, failures propagate from await without
   wedging the pool, and shutdown drains gracefully. *)
let persistent_unit =
  [
    tc "batches keep task order across the same pool" (fun () ->
        let p = Suite.Pool.create ~jobs:4 () in
        Fun.protect
          ~finally:(fun () -> Suite.Pool.shutdown p)
          (fun () ->
            for round = 1 to 5 do
              let tasks = Array.init 50 (fun i -> i + round) in
              let res =
                Suite.Pool.await (Suite.Pool.submit p (fun i -> i * i) tasks)
              in
              Array.iteri
                (fun i v ->
                  check Alcotest.int
                    (Printf.sprintf "round %d slot %d" round i)
                    ((i + round) * (i + round))
                    v)
                res
            done));
    tc "empty batch" (fun () ->
        let p = Suite.Pool.create ~jobs:2 () in
        Fun.protect
          ~finally:(fun () -> Suite.Pool.shutdown p)
          (fun () ->
            check Alcotest.int "length" 0
              (Array.length
                 (Suite.Pool.await (Suite.Pool.submit p (fun x -> x) [||])))));
    tc "interleaved batches answer independently" (fun () ->
        let p = Suite.Pool.create ~jobs:3 () in
        Fun.protect
          ~finally:(fun () -> Suite.Pool.shutdown p)
          (fun () ->
            let b1 = Suite.Pool.submit p (fun i -> i + 1) [| 1; 2; 3 |] in
            let b2 = Suite.Pool.submit p (fun i -> i * 10) [| 1; 2 |] in
            check (Alcotest.list Alcotest.int) "second" [ 10; 20 ]
              (Array.to_list (Suite.Pool.await b2));
            check (Alcotest.list Alcotest.int) "first" [ 2; 3; 4 ]
              (Array.to_list (Suite.Pool.await b1))));
    tc "lowest-indexed failure propagates; the pool keeps working"
      (fun () ->
        let p = Suite.Pool.create ~jobs:3 () in
        Fun.protect
          ~finally:(fun () -> Suite.Pool.shutdown p)
          (fun () ->
            let b =
              Suite.Pool.submit p
                (fun i ->
                  if i = 7 then failwith "seven"
                  else if i = 3 then failwith "three"
                  else i)
                (Array.init 10 Fun.id)
            in
            (try
               ignore (Suite.Pool.await b);
               Alcotest.fail "expected a Failure"
             with Failure m -> check Alcotest.string "lowest wins" "three" m);
            (* The failure stayed in its batch: the pool still serves. *)
            let ok =
              Suite.Pool.await (Suite.Pool.submit p (fun i -> -i) [| 1; 2 |])
            in
            check (Alcotest.list Alcotest.int) "next batch" [ -1; -2 ]
              (Array.to_list ok)));
    tc "a task raising mid-drain propagates from await, not shutdown"
      (fun () ->
        let p = Suite.Pool.create ~jobs:2 () in
        let gate = Atomic.make false in
        let b =
          Suite.Pool.submit p
            (fun i ->
              (* Park until shutdown's drain runs the queue down. *)
              while not (Atomic.get gate) do
                Domain.cpu_relax ()
              done;
              if i = 1 then failwith "mid-drain" else i)
            [| 0; 1; 2; 3 |]
        in
        Atomic.set gate true;
        (* Graceful: shutdown itself must not raise and must not wedge,
           whatever the in-flight tasks do. *)
        Suite.Pool.shutdown p;
        (try
           ignore (Suite.Pool.await b);
           Alcotest.fail "expected a Failure"
         with Failure m -> check Alcotest.string "message" "mid-drain" m);
        Suite.Pool.shutdown p (* idempotent *));
    tc "submit after shutdown raises" (fun () ->
        let p = Suite.Pool.create ~jobs:2 () in
        Suite.Pool.shutdown p;
        match Suite.Pool.submit p (fun x -> x) [| 1 |] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    tc "jobs clamps to at least one" (fun () ->
        let p = Suite.Pool.create ~jobs:0 () in
        Fun.protect
          ~finally:(fun () -> Suite.Pool.shutdown p)
          (fun () ->
            check Alcotest.bool "positive" true (Suite.Pool.jobs p >= 1);
            let r =
              Suite.Pool.await (Suite.Pool.submit p (fun i -> i + 1) [| 41 |])
            in
            check Alcotest.int "works" 42 r.(0)));
  ]

(* Allocate every suite kernel the way `ralloc batch --kernels -O` does
   and render the result; any scheduling-dependent behavior in the
   allocator (iteration over shared mutable state, hash-order effects)
   would show up as a diff between the -j 1 and -j 4 outputs. *)
let allocate_all jobs =
  Suite.Pool.run ~jobs
    (fun k ->
      let cfg = Suite.Kernels.cfg_of ~optimize:true k in
      let res =
        Remat.Allocator.run ~mode:Remat.Mode.Briggs_remat
          ~machine:Remat.Machine.standard cfg
      in
      Iloc.Printer.routine_to_string res.Remat.Allocator.cfg)
    (Array.of_list Suite.Kernels.all)

let determinism_unit =
  [
    tc "kernel suite is byte-identical under -j1 and -j4" (fun () ->
        let seq = allocate_all 1 and par = allocate_all 4 in
        check Alcotest.int "same count" (Array.length seq) (Array.length par);
        Array.iteri
          (fun i s ->
            check Alcotest.string
              (List.nth Suite.Kernels.all i).Suite.Kernels.name s par.(i))
          seq);
  ]

let () =
  Alcotest.run "batch"
    [
      ("pool", pool_unit);
      ("persistent", persistent_unit);
      ("determinism", determinism_unit);
    ]
