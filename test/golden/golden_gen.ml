(* Golden-output generator: prints the allocated ILOC for one scenario
   under every allocator mode.  Each scenario mirrors one of the
   walkthroughs in examples/ (plus the paper's Figure 1), so the golden
   files double as a change detector for the examples' output: any edit
   to coloring, spilling or remat emission that alters allocated code
   shows up as a readable diff, and `dune promote` blesses it.

   Every allocation runs with ~verify:true, so a golden file can only be
   (re)generated from output the static validator has proved faithful. *)

module Mode = Remat.Mode
module Machine = Remat.Machine
module Instr = Iloc.Instr
module Builder = Iloc.Builder

(* The routine examples/quickstart.ml builds: sum a constant table. *)
let quickstart () =
  let b = Builder.create "quickstart" in
  Builder.data b ~readonly:true
    ~init:(Iloc.Symbol.Int_elts [ 3; 1; 4; 1; 5; 9; 2; 6 ])
    "table" 8;
  let p = Builder.ireg b in
  let i = Builder.ireg b in
  let acc = Builder.ireg b in
  let v = Builder.ireg b in
  let t = Builder.ireg b in
  let zero = Builder.ireg b in
  Builder.block b "entry"
    [ Instr.laddr p "table"; Instr.ldi i 8; Instr.ldi acc 0 ]
    ~term:(Instr.jmp "loop");
  Builder.block b "loop"
    [
      Instr.load v p;
      Instr.add acc acc v;
      Instr.addi p p 1;
      Instr.subi i i 1;
      Instr.ldi zero 0;
      Instr.cmp Instr.Gt t i zero;
    ]
    ~term:(Instr.cbr t "loop" "done");
  Builder.block b "done" [ Instr.print_ acc ] ~term:(Instr.ret (Some acc));
  Builder.finish b

(* The MF program examples/compiler_backend.ml compiles. *)
let smooth_source =
  {|
program smooth
const n = 24
real sig[24] = { 0.1 0.9 0.4 0.8 0.2 0.7 0.3 0.6 0.5 0.4 0.6 0.3
                 0.7 0.2 0.8 0.1 0.9 0.0 0.5 0.5 0.4 0.6 0.3 0.7 }
real outv[24]
int i, pass
real a, b, c, total
total = 0.0
for pass = 1 to 4 do
  for i = 1 to n - 2 do
    a = sig[i - 1]
    b = sig[i]
    c = sig[i + 1]
    outv[i] = 0.25 * a + 0.5 * b + 0.25 * c
  end
  for i = 1 to n - 2 do
    sig[i] = outv[i]
    total = total + outv[i]
  end
end
print total
|}

let scenario = function
  | "quickstart" ->
      (quickstart (), Machine.make ~name:"tiny" ~k_int:4 ~k_float:2)
  | "figure1" -> (Suite.Figures.fig1_source (), Suite.Figures.fig1_machine)
  | "compiler_backend" ->
      ( Opt.Pipeline.run (Frontend.Lower.compile smooth_source),
        Machine.make ~name:"k8" ~k_int:8 ~k_float:8 )
  | "allocator_research" ->
      ( Suite.Kernels.cfg_of (Suite.Kernels.find "ptrsweep"),
        Machine.make ~name:"k8" ~k_int:8 ~k_float:8 )
  | s -> failwith ("unknown scenario: " ^ s)

let () =
  let cfg, machine = scenario Sys.argv.(1) in
  List.iter
    (fun mode ->
      Printf.printf "==== %s @ %s (%d int / %d float) ====\n"
        (Mode.to_string mode) machine.Machine.name machine.Machine.k_int
        machine.Machine.k_float;
      (match Remat.Allocator.allocate ~verify:true ~mode ~machine cfg with
      | res ->
          print_string (Iloc.Printer.routine_to_string res.Remat.Allocator.cfg);
          Printf.printf
            "rounds=%d remat=%d memory=%d\n"
            res.Remat.Allocator.rounds res.Remat.Allocator.spilled_remat
            res.Remat.Allocator.spilled_memory
      | exception Remat.Spill_code.Pressure_too_high _ ->
          print_string "(allocation refused: pressure too high)\n");
      print_newline ())
    Mode.all
