(* Replicate the allocator loop manually to watch spill decisions. *)

module Cfg = Iloc.Cfg
module Reg = Iloc.Reg

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "ptrsweep" in
  let k_int = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 8 in
  let cfg0 =
    Cfg.split_critical_edges (Suite.Kernels.cfg_of (Suite.Kernels.find name))
  in
  let machine = Remat.Machine.make ~name:"dbg" ~k_int ~k_float:8 in
  let dom = Dataflow.Dominance.compute cfg0 in
  let loops = Dataflow.Loops.compute cfg0 dom in
  let mode = if Array.length Sys.argv > 3 then Option.get (Remat.Mode.of_string Sys.argv.(3)) else Remat.Mode.Briggs_remat in
  let rn = Remat.Renumber.run mode cfg0 in
  let ctx =
    Remat.Context.create ~mode ~machine ~loops ~tags:rn.Remat.Renumber.tags
      ~split_pairs:rn.Remat.Renumber.split_pairs
      ~stats:(Remat.Stats.create ()) rn.Remat.Renumber.cfg
  in
  let cfg = ctx.Remat.Context.cfg in
  let tags = ctx.Remat.Context.tags in
  let infinite = ctx.Remat.Context.infinite in
  let slot_counter = ref 0 in
  let round = ref 0 in
  let continue = ref true in
  while !continue && !round < 10 do
    incr round;
    Remat.Context.set_round ctx !round;
    Remat.Allocator.build_coalesce ctx;
    let g = Remat.Context.graph ctx in
    let costs = Remat.Spill_cost.phase ctx in
    let order = Remat.Simplify.phase ctx ~costs in
    let partners = Array.make (Remat.Interference.n_nodes g) [] in
    List.iter
      (fun (a, b) ->
        match
          ( Remat.Interference.index_opt g a,
            Remat.Interference.index_opt g b )
        with
        | Some ia, Some ib ->
            partners.(ia) <- ib :: partners.(ia);
            partners.(ib) <- ia :: partners.(ib)
        | _ -> ())
      ctx.Remat.Context.split_pairs;
    let sel = Remat.Select.phase ctx ~order ~partners in
    Format.printf "round %d: nodes=%d uncolored=%d@." !round
      (Remat.Interference.n_alive g)
      (List.length sel.Remat.Select.spilled);
    List.iter
      (fun i ->
        let r = Remat.Interference.reg g i in
        Format.printf "   spill %s deg=%d cost=%s tag=%s temp=%b@."
          (Reg.to_string r)
          (Remat.Interference.degree g i)
          (string_of_float costs.(i))
          (Remat.Tag.to_string
             (Option.value (Reg.Tbl.find_opt tags r) ~default:Remat.Tag.Bottom))
          (Reg.Tbl.mem infinite r);
        if List.length sel.Remat.Select.spilled <= 3 then
          List.iter
            (fun nb ->
              Format.printf "      nb %s cost=%s temp=%b@."
                (Reg.to_string (Remat.Interference.reg g nb))
                (string_of_float costs.(nb))
                (Reg.Tbl.mem infinite (Remat.Interference.reg g nb)))
            (Remat.Interference.neighbors g i))
      sel.Remat.Select.spilled;
    if sel.Remat.Select.spilled = [] then continue := false
    else begin
      let spilled = List.map (Remat.Interference.reg g) sel.Remat.Select.spilled in
      match
        Remat.Spill_code.insert cfg ~tags ~infinite ~spilled ~slot_counter
      with
      | _ -> Remat.Context.invalidate ctx
      | exception Remat.Spill_code.Pressure_too_high m ->
          Format.printf "PRESSURE: %s@." m;
          continue := false
    end
  done
