(* Tests for the lib/fuzz subsystem: generator determinism and
   invariants, the differential oracle, the delta-debugging reducer (on a
   deliberately planted miscompile) and campaign determinism across -j. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

module Cfg = Iloc.Cfg

(* --- generator --- *)

let gen_tests =
  [
    tc "same seed, same routine" (fun () ->
        List.iter
          (fun seed ->
            let a = Fuzz.Gen.generate seed and b = Fuzz.Gen.generate seed in
            check Alcotest.bool "structural" true (Cfg.structural_equal a b);
            check Alcotest.string "printed"
              (Iloc.Printer.routine_to_string a)
              (Iloc.Printer.routine_to_string b))
          [ 0; 1; 42; 1000; 123456789 ]);
    tc "generated routines validate and run" (fun () ->
        for seed = 0 to 24 do
          let cfg = Fuzz.Gen.generate seed in
          (match Iloc.Validate.routine cfg with
          | Ok () -> ()
          | Error es ->
              Alcotest.failf "seed %d invalid: %s" seed
                (String.concat "; "
                   (List.map Iloc.Validate.error_to_string es)));
          match Fuzz.Oracle.reference cfg with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "seed %d does not run: %s" seed m
        done);
    tc "high-pressure config validates and runs" (fun () ->
        for seed = 0 to 9 do
          let cfg =
            Fuzz.Gen.generate ~config:Fuzz.Gen.high_pressure seed
          in
          (match Iloc.Validate.routine cfg with
          | Ok () -> ()
          | Error es ->
              Alcotest.failf "seed %d invalid: %s" seed
                (String.concat "; "
                   (List.map Iloc.Validate.error_to_string es)));
          match Fuzz.Oracle.reference cfg with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "seed %d does not run: %s" seed m
        done);
  ]

(* --- oracle --- *)

(* --- the small-edit mutator behind the serving load generator --- *)

let mutate_prop =
  QCheck.Test.make ~count:150
    ~name:"mutate is deterministic and Validate-clean"
    QCheck.(pair Testutil.Gen_prog.arbitrary_cfg small_nat)
    (fun (cfg, seed) ->
      let a = Fuzz.Gen.mutate ~seed cfg in
      let b = Fuzz.Gen.mutate ~seed cfg in
      (* Deterministic in (seed, cfg)... *)
      Cfg.structural_equal a b
      && String.equal
           (Iloc.Printer.routine_to_string a)
           (Iloc.Printer.routine_to_string b)
      (* ...and as clean as its input: generated routines validate, so
         every mutant must too. *)
      &&
      match Iloc.Validate.routine a with
      | Ok () -> true
      | Error es ->
          QCheck.Test.fail_reportf "mutant of seed invalid: %s"
            (String.concat "; " (List.map Iloc.Validate.error_to_string es)))

let mutate_tests =
  [
    tc "mutation leaves the input routine untouched" (fun () ->
        for seed = 0 to 9 do
          let cfg = Fuzz.Gen.generate seed in
          let before = Iloc.Printer.routine_to_string cfg in
          ignore (Fuzz.Gen.mutate ~seed:(seed * 7 + 1) cfg);
          check Alcotest.string
            (Printf.sprintf "seed %d" seed)
            before
            (Iloc.Printer.routine_to_string cfg)
        done);
    tc "mutation actually edits most routines" (fun () ->
        let changed = ref 0 in
        for seed = 0 to 19 do
          let cfg = Fuzz.Gen.generate seed in
          let m = Fuzz.Gen.mutate ~seed:(100 + seed) cfg in
          if
            not
              (String.equal
                 (Iloc.Printer.routine_to_string cfg)
                 (Iloc.Printer.routine_to_string m))
          then incr changed
        done;
        check Alcotest.bool
          (Printf.sprintf "%d/20 routines changed" !changed)
          true (!changed >= 15));
    tc "different seeds reach different edits" (fun () ->
        let cfg = Fuzz.Gen.generate 5 in
        let texts =
          List.init 12 (fun s ->
              Iloc.Printer.routine_to_string (Fuzz.Gen.mutate ~seed:s cfg))
        in
        check Alcotest.bool "at least three distinct mutants" true
          (List.length (List.sort_uniq String.compare texts) >= 3));
    tc "mutants still run under the reference interpreter" (fun () ->
        for seed = 0 to 14 do
          let m = Fuzz.Gen.mutate ~seed:(seed * 13 + 3) (Fuzz.Gen.generate seed) in
          match Fuzz.Oracle.reference m with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "seed %d mutant does not run: %s" seed msg
        done);
  ]

let oracle_tests =
  [
    tc "fixed fixtures are clean across the matrix" (fun () ->
        List.iter
          (fun (name, cfg) ->
            match Fuzz.Oracle.check cfg with
            | Ok [] -> ()
            | Ok ((c, d) :: _) ->
                Alcotest.failf "%s diverges under %s: %s" name
                  (Fuzz.Oracle.config_name c)
                  (Fuzz.Oracle.describe d)
            | Error m -> Alcotest.failf "%s reference failed: %s" name m)
          (Testutil.all_fixed ()));
    tc "generated seeds are clean across the matrix" (fun () ->
        for seed = 0 to 9 do
          match Fuzz.Oracle.check (Fuzz.Gen.generate seed) with
          | Ok [] -> ()
          | Ok ((c, d) :: _) ->
              Alcotest.failf "seed %d diverges under %s: %s" seed
                (Fuzz.Oracle.config_name c)
                (Fuzz.Oracle.describe d)
          | Error m -> Alcotest.failf "seed %d reference failed: %s" seed m
        done);
  ]

(* --- reducer, on a planted spill-slot off-by-one --- *)

(* With [fault_reload_skew = 1] every reload reads its neighbour's frame
   slot, so any configuration that spills through memory miscompiles:
   either a wrong value flows out (wrong outcome) or an unwritten slot is
   read (runtime error).  The oracle must catch it and the reducer must
   shrink the repro while the same configuration keeps failing. *)
let planted_config =
  {
    Fuzz.Oracle.optimize = false;
    mode = Remat.Mode.Briggs_remat;
    machine = Remat.Machine.make ~name:"tiny" ~k_int:4 ~k_float:4;
  }

let non_crash_divergence cfg =
  match Fuzz.Oracle.reference cfg with
  | Error _ -> None
  | Ok reference -> (
      match Fuzz.Oracle.check_config ~reference cfg planted_config with
      | Some d when Fuzz.Oracle.class_of d <> "crash" -> Some d
      | _ -> None)

let with_planted_fault f =
  Remat.Spill_code.fault_reload_skew := 1;
  Fun.protect ~finally:(fun () -> Remat.Spill_code.fault_reload_skew := 0) f

let reduce_tests =
  [
    tc "oracle catches the planted off-by-one" (fun () ->
        (* Sound allocator first: the fixture must be clean... *)
        let cfg = Testutil.high_pressure () in
        (match non_crash_divergence cfg with
        | None -> ()
        | Some d ->
            Alcotest.failf "diverges without the fault: %s"
              (Fuzz.Oracle.describe d));
        (* ... and miscompile once the fault is armed. *)
        with_planted_fault (fun () ->
            match non_crash_divergence cfg with
            | Some _ -> ()
            | None -> Alcotest.fail "planted miscompile not detected"))
    ;
    tc "reducer shrinks the planted repro to <= 15 instructions" (fun () ->
        with_planted_fault (fun () ->
            let cfg = Testutil.high_pressure () in
            let interesting c = non_crash_divergence c <> None in
            check Alcotest.bool "repro is interesting" true (interesting cfg);
            let red = Fuzz.Reduce.run ~interesting cfg in
            let n0 = Fuzz.Reduce.instr_count cfg in
            let n1 = Fuzz.Reduce.instr_count red in
            if n1 > 15 then
              Alcotest.failf "reduced repro still has %d instructions (from %d):\n%s"
                n1 n0
                (Iloc.Printer.routine_to_string red);
            check Alcotest.bool "reduced repro still diverges" true
              (interesting red);
            (* The repro is a valid routine and survives a print/parse trip,
               so the persisted .il file reproduces the bug as-is. *)
            (match Iloc.Validate.routine red with
            | Ok () -> ()
            | Error es ->
                Alcotest.failf "reduced repro invalid: %s"
                  (String.concat "; "
                     (List.map Iloc.Validate.error_to_string es)));
            let red2 =
              Iloc.Parser.routine (Iloc.Printer.routine_to_string red)
            in
            check Alcotest.bool "reparsed repro still diverges" true
              (interesting red2)));
  ]

(* --- planted fault in SSA destruction --- *)

(* [Destruct.fault_swap_seq = 1] swaps the first adjacent dependent pair
   of a sequentialized parallel copy — exactly the ordering obligation
   sequentialization exists to meet.  The differential oracle must flag
   the miscompile, the static verifier must name the faulty block and
   instruction, and the reducer must shrink the repro. *)
let ssa_planted_config =
  {
    Fuzz.Oracle.optimize = false;
    mode = Remat.Mode.Ssa_remat;
    machine = Remat.Machine.make ~name:"tiny" ~k_int:4 ~k_float:4;
  }

let ssa_divergence cfg =
  match Fuzz.Oracle.reference cfg with
  | Error _ -> None
  | Ok reference -> (
      match Fuzz.Oracle.check_config ~reference cfg ssa_planted_config with
      | Some d when Fuzz.Oracle.class_of d <> "crash" -> Some d
      | _ -> None)

let with_swap_fault f =
  Ssa.Destruct.fault_swap_seq := 1;
  Fun.protect ~finally:(fun () -> Ssa.Destruct.fault_swap_seq := 0) f

(* First generated routine whose destruction emits a dependent pair the
   fault can swap into a divergence (searched, so the test tracks
   generator and pipeline changes instead of pinning one seed). *)
let find_ssa_repro () =
  let rec go seed =
    if seed > 63 then Alcotest.fail "no seed trips the destruction fault"
    else
      let cfg = Fuzz.Gen.generate seed in
      if ssa_divergence cfg <> None then cfg else go (seed + 1)
  in
  go 0

let destruct_fault_tests =
  [
    tc "oracle catches the swapped parallel-copy step" (fun () ->
        let cfg = with_swap_fault find_ssa_repro in
        (* The same routine must be clean without the fault... *)
        match ssa_divergence cfg with
        | Some d ->
            Alcotest.failf "diverges without the fault: %s"
              (Fuzz.Oracle.describe d)
        | None -> ());
    tc "static verifier names the faulty block and instruction" (fun () ->
        let cfg = with_swap_fault find_ssa_repro in
        let out =
          with_swap_fault (fun () ->
              (Remat.Allocator.allocate ~mode:Remat.Mode.Ssa_remat
                 ~machine:ssa_planted_config.Fuzz.Oracle.machine cfg)
                .Remat.Allocator.cfg)
        in
        match Verify.Check.routine ~input:cfg ~output:out ~k_int:4 ~k_float:4 with
        | Ok _ -> Alcotest.fail "verifier accepted the swapped copy sequence"
        | Error es ->
            check Alcotest.bool "an error pinpoints block and instruction" true
              (List.exists
                 (fun (e : Verify.Error.t) ->
                   (not (Verify.Error.is_unsupported e))
                   && e.Verify.Error.block <> None
                   && e.Verify.Error.index <> None)
                 es));
    tc "reducer shrinks the destruction repro to <= 15 instructions"
      (fun () ->
        with_swap_fault (fun () ->
            let cfg = find_ssa_repro () in
            let interesting c = ssa_divergence c <> None in
            let red = Fuzz.Reduce.run ~interesting cfg in
            let n1 = Fuzz.Reduce.instr_count red in
            if n1 > 15 then
              Alcotest.failf
                "reduced repro still has %d instructions (from %d):\n%s" n1
                (Fuzz.Reduce.instr_count cfg)
                (Iloc.Printer.routine_to_string red);
            check Alcotest.bool "reduced repro still diverges" true
              (interesting red)));
  ]

(* --- campaign --- *)

let campaign_tests =
  [
    tc "summary is identical under -j 1 and -j 2" (fun () ->
        let run jobs =
          Fuzz.Campaign.run ~runs:20 ~seed:42 ~jobs ()
        in
        let a = run 1 and b = run 2 in
        check Alcotest.string "json"
          (Fuzz.Campaign.summary_to_json a)
          (Fuzz.Campaign.summary_to_json b);
        check Alcotest.int "clean tree has no divergences" 0
          (List.length a.Fuzz.Campaign.failures));
    tc "campaign reports and buckets planted divergences" (fun () ->
        with_planted_fault (fun () ->
            let matrix = [ planted_config ] in
            let gen_config = Fuzz.Gen.high_pressure in
            let s =
              Fuzz.Campaign.run ~gen_config ~matrix ~runs:6 ~seed:7 ~jobs:1 ()
            in
            if s.Fuzz.Campaign.failures = [] then
              Alcotest.fail "no divergence found over high-pressure seeds";
            List.iter
              (fun (r : Fuzz.Campaign.report) ->
                check Alcotest.bool "reduction never grows the repro" true
                  (r.reduced_instrs <= r.original_instrs);
                check Alcotest.string "failing config recorded"
                  (Fuzz.Oracle.config_name planted_config)
                  r.config)
              s.Fuzz.Campaign.failures;
            check Alcotest.bool "buckets non-empty" true
              (s.Fuzz.Campaign.buckets <> [])));
    tc "save writes summary.json and one .il per failure" (fun () ->
        with_planted_fault (fun () ->
            let s =
              Fuzz.Campaign.run ~gen_config:Fuzz.Gen.high_pressure
                ~matrix:[ planted_config ] ~reduce:false ~runs:3 ~seed:7
                ~jobs:1 ()
            in
            let dir = "fuzz-corpus-under-test" in
            Fuzz.Campaign.save ~dir s;
            check Alcotest.bool "summary.json" true
              (Sys.file_exists (Filename.concat dir "summary.json"));
            List.iter
              (fun (r : Fuzz.Campaign.report) ->
                let f =
                  Filename.concat dir (Printf.sprintf "seed-%d.il" r.seed)
                in
                check Alcotest.bool f true (Sys.file_exists f);
                (* The commented header keeps the repro parseable. *)
                ignore
                  (Iloc.Parser.routine
                     (let ic = open_in_bin f in
                      Fun.protect
                        ~finally:(fun () -> close_in ic)
                        (fun () ->
                          really_input_string ic (in_channel_length ic)))))
              s.Fuzz.Campaign.failures));
  ]

let () =
  Alcotest.run "fuzz"
    [
      ("gen", gen_tests);
      ("mutate", mutate_tests @ [ QCheck_alcotest.to_alcotest mutate_prop ]);
      ("oracle", oracle_tests);
      ("reduce", reduce_tests);
      ("destruct-fault", destruct_fault_tests);
      ("campaign", campaign_tests);
    ]
