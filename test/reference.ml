(* The coloring core as it stood before the worklist/heap optimization,
   kept verbatim as an executable specification.  Property tests assert
   the production phases produce byte-identical results (same simplify
   stack, same colors, same coalesced routine), and the scale benchmark
   measures these as its "old" side — so the asymptotic claim is made
   against the real former code, not a reconstruction.

   Deliberately not kept in sync stylistically with lib/core: this code
   must stay what it is. *)

module Reg = Iloc.Reg
module Instr = Iloc.Instr
module Interference = Remat.Interference
module Context = Remat.Context
module Stats = Remat.Stats
module Tag = Remat.Tag

module Simplify = struct
  (* O(n) whole-graph rescan per spill-candidate pick. *)
  let run (g : Interference.t) ~k ~costs =
    let n = Interference.n_nodes g in
    let deg = Array.init n (Interference.degree g) in
    let removed = Array.init n (fun i -> not (Interference.alive g i)) in
    let queued = Array.make n false in
    let k_of i = k (Reg.cls (Interference.reg g i)) in
    let trivial = Queue.create () in
    for i = 0 to n - 1 do
      if (not removed.(i)) && deg.(i) < k_of i then begin
        Queue.add i trivial;
        queued.(i) <- true
      end
    done;
    let stack = ref [] in
    let remaining = ref (Interference.n_alive g) in
    let remove i =
      removed.(i) <- true;
      decr remaining;
      stack := i :: !stack;
      Interference.iter_neighbors
        (fun nb ->
          if not removed.(nb) then begin
            deg.(nb) <- deg.(nb) - 1;
            if deg.(nb) < k_of nb && not queued.(nb) then begin
              Queue.add nb trivial;
              queued.(nb) <- true
            end
          end)
        g i
    in
    while !remaining > 0 do
      if not (Queue.is_empty trivial) then begin
        let i = Queue.pop trivial in
        if not removed.(i) then remove i
      end
      else begin
        let best = ref (-1) in
        let best_metric = ref infinity in
        for i = 0 to n - 1 do
          if not removed.(i) then begin
            let metric =
              if deg.(i) = 0 then 0. else costs.(i) /. float_of_int deg.(i)
            in
            if
              metric < !best_metric
              || !best = -1
              || (metric = !best_metric && deg.(i) > deg.(!best))
            then begin
              best := i;
              best_metric := metric
            end
          end
        done;
        remove !best
      end
    done;
    !stack
end

module Select = struct
  type t = { colors : int option array; spilled : int list }

  (* Forbidden-color lists rebuilt per node, List.mem lookahead. *)
  let run (g : Interference.t) ~k ~order ~partners =
    let n = Interference.n_nodes g in
    let colors = Array.make n None in
    let forbidden i =
      Interference.fold_neighbors
        (fun nb acc ->
          match colors.(nb) with Some c -> c :: acc | None -> acc)
        g i []
    in
    let pick i =
      let ki = k (Reg.cls (Interference.reg g i)) in
      let bad = forbidden i in
      let avail = Array.make ki true in
      List.iter (fun c -> if c < ki then avail.(c) <- false) bad;
      let available c = c >= 0 && c < ki && avail.(c) in
      let partner_color =
        List.find_opt
          (fun p ->
            match colors.(p) with Some c -> available c | None -> false)
          partners.(i)
        |> Option.map (fun p -> Option.get colors.(p))
      in
      match partner_color with
      | Some c -> Some c
      | None -> (
          let lookahead =
            List.find_map
              (fun p ->
                if colors.(p) <> None then None
                else begin
                  let pbad = forbidden p in
                  let rec first c =
                    if c >= ki then None
                    else if avail.(c) && not (List.mem c pbad) then Some c
                    else first (c + 1)
                  in
                  first 0
                end)
              partners.(i)
          in
          match lookahead with
          | Some c -> Some c
          | None ->
              let rec first c =
                if c >= ki then None
                else if avail.(c) then Some c
                else first (c + 1)
              in
              first 0)
    in
    List.iter (fun i -> colors.(i) <- pick i) order;
    let spilled =
      List.sort Int.compare (List.filter (fun i -> colors.(i) = None) order)
    in
    { colors; spilled }
end

module Coalesce = struct
  type phase = Unrestricted | Conservative
  type outcome = { changed : bool; coalesced : int }

  let norm_pair a b = if Reg.compare a b <= 0 then (a, b) else (b, a)

  let merge_into (ctx : Context.t) g ~keep ~drop =
    let keep_reg = Interference.reg g keep
    and drop_reg = Interference.reg g drop in
    Interference.merge g ~keep ~drop;
    Context.count ctx Stats.Node_merges 1;
    let tags = ctx.Context.tags and infinite = ctx.Context.infinite in
    let drop_tag =
      Option.value (Reg.Tbl.find_opt tags drop_reg) ~default:Tag.Bottom
    in
    let keep_tag =
      Option.value (Reg.Tbl.find_opt tags keep_reg) ~default:Tag.Bottom
    in
    Reg.Tbl.replace tags keep_reg (Tag.meet drop_tag keep_tag);
    Reg.Tbl.remove tags drop_reg;
    if not (Reg.Tbl.mem infinite drop_reg) then
      Reg.Tbl.remove infinite keep_reg;
    Reg.Tbl.remove infinite drop_reg

  (* Whole-CFG rescan per sweep; allocating Briggs test (neighbor-list
     append, sort_uniq, filter). *)
  let pass phase (ctx : Context.t) =
    let g = Context.graph ctx in
    let cfg = ctx.Context.cfg in
    Context.count ctx Stats.Coalesce_sweeps 1;
    let split_set = Hashtbl.create 16 in
    List.iter
      (fun (a, b) -> Hashtbl.replace split_set (norm_pair a b) ())
      ctx.Context.split_pairs;
    let is_split d s = Hashtbl.mem split_set (norm_pair d s) in
    let briggs_ok di si =
      let cls = Reg.cls (Interference.reg g di) in
      let nbrs =
        List.sort_uniq Int.compare
          (Interference.neighbors g di @ Interference.neighbors g si)
      in
      let significant =
        List.length
          (List.filter
             (fun nb ->
               nb <> di && nb <> si
               && Interference.degree g nb
                  >= ctx.Context.k (Reg.cls (Interference.reg g nb)))
             nbrs)
      in
      significant < ctx.Context.k cls
    in
    let coalesced = ref 0 in
    Iloc.Cfg.iter_blocks
      (fun b ->
        List.iter
          (fun (i : Instr.t) ->
            if Instr.is_copy i then begin
              let d = Option.get i.Instr.dst and s = i.Instr.srcs.(0) in
              match
                (Interference.index_opt g d, Interference.index_opt g s)
              with
              | Some d0, Some s0 ->
                  let di = Interference.find g d0
                  and si = Interference.find g s0 in
                  if di <> si && not (Interference.interfere g di si) then begin
                    let ok =
                      match phase with
                      | Unrestricted -> not (is_split d s)
                      | Conservative -> is_split d s && briggs_ok di si
                    in
                    if ok then begin
                      merge_into ctx g ~keep:di ~drop:si;
                      incr coalesced
                    end
                  end
              | _ -> ()
            end)
          b.body)
      cfg;
    if !coalesced = 0 then { changed = false; coalesced = 0 }
    else begin
      let rename r =
        match Interference.index_opt g r with
        | None -> r
        | Some i -> Interference.reg g (Interference.find g i)
      in
      Iloc.Cfg.iter_blocks
        (fun b ->
          b.Iloc.Block.body <-
            List.filter_map
              (fun i ->
                let i = Instr.map_regs rename i in
                match (i.Instr.op, i.Instr.dst) with
                | Instr.Copy, Some d when Reg.equal d i.Instr.srcs.(0) -> None
                | _ -> Some i)
              b.Iloc.Block.body;
          b.Iloc.Block.term <- Instr.map_regs rename b.Iloc.Block.term)
        cfg;
      ctx.Context.split_pairs <-
        List.filter_map
          (fun (a, b) ->
            let a = rename a and b = rename b in
            if Reg.equal a b then None else Some (a, b))
          ctx.Context.split_pairs;
      ctx.Context.coalesced <- ctx.Context.coalesced + !coalesced;
      Context.count ctx Stats.Coalesced_copies !coalesced;
      Context.invalidate_liveness ctx;
      { changed = true; coalesced = !coalesced }
    end

  (* The allocator's build_coalesce regime: unrestricted to a fixpoint,
     then (for splitting modes) conservative to a fixpoint. *)
  let fixpoint (ctx : Context.t) =
    ignore (Context.graph ctx);
    let phase = ref Unrestricted in
    let rec loop () =
      let outcome = pass !phase ctx in
      if outcome.changed then loop ()
      else
        match !phase with
        | Unrestricted when Remat.Mode.splits ctx.Context.mode ->
            phase := Conservative;
            loop ()
        | Unrestricted | Conservative -> ()
    in
    loop ()
end
