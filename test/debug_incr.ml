(* Diagnose incremental-graph vs rebuild mismatches on a routine file. *)

module Cfg = Iloc.Cfg
module Reg = Iloc.Reg

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let path = Sys.argv.(1) in
  let mode =
    if Array.length Sys.argv > 2 then
      Option.get (Remat.Mode.of_string Sys.argv.(2))
    else Remat.Mode.Chaitin_remat
  in
  let cfg0 = Iloc.Parser.routine (read_file path) in
  ignore (Opt.Dce.routine cfg0);
  let cfg = Cfg.split_critical_edges cfg0 in
  let dom = Dataflow.Dominance.compute cfg in
  let loops = Dataflow.Loops.compute cfg dom in
  let rn = Remat.Renumber.run mode cfg in
  let ctx =
    Remat.Context.create ~mode ~machine:Remat.Machine.standard ~loops
      ~tags:rn.Remat.Renumber.tags ~split_pairs:rn.Remat.Renumber.split_pairs
      ~stats:(Remat.Stats.create ()) rn.Remat.Renumber.cfg
  in
  Remat.Context.set_round ctx 1;
  Remat.Allocator.build_coalesce ctx;
  let g = Remat.Context.graph ctx in
  let live = Dataflow.Liveness.compute ctx.Remat.Context.cfg in
  let fresh = Remat.Interference.build ctx.Remat.Context.cfg live in
  let n = Remat.Interference.n_nodes g in
  let alive = List.filter (Remat.Interference.alive g) (List.init n Fun.id) in
  Format.printf "inc: n_alive=%d n_edges=%d   fresh: n=%d n_edges=%d@."
    (Remat.Interference.n_alive g)
    (Remat.Interference.n_edges g)
    (Remat.Interference.n_nodes fresh)
    (Remat.Interference.n_edges fresh);
  let fresh_index i =
    Remat.Interference.index_opt fresh (Remat.Interference.reg g i)
  in
  List.iter
    (fun i ->
      match fresh_index i with
      | None ->
          Format.printf "alive node %d (%s) missing from rebuild@." i
            (Reg.to_string (Remat.Interference.reg g i))
      | Some fi ->
          let di = Remat.Interference.degree g i
          and df = Remat.Interference.degree fresh fi in
          if di <> df then
            Format.printf "degree mismatch %s: inc=%d fresh=%d@."
              (Reg.to_string (Remat.Interference.reg g i))
              di df)
    alive;
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if i < j then
            match (fresh_index i, fresh_index j) with
            | Some fi, Some fj ->
                let a = Remat.Interference.interfere g i j
                and b = Remat.Interference.interfere fresh fi fj in
                if a <> b then begin
                  let copy_between = ref false in
                  Cfg.iter_instrs
                    (fun _ ins ->
                      if Iloc.Instr.is_copy ins then
                        match (ins.Iloc.Instr.dst, ins.Iloc.Instr.srcs) with
                        | Some d, [| s |] -> (
                            match
                              ( Remat.Interference.index_opt g d,
                                Remat.Interference.index_opt g s )
                            with
                            | Some di, Some si ->
                                let di = Remat.Interference.find g di
                                and si = Remat.Interference.find g si in
                                if
                                  (di = i && si = j) || (di = j && si = i)
                                then copy_between := true
                            | _ -> ())
                        | _ -> ())
                    ctx.Remat.Context.cfg;
                  Format.printf
                    "edge mismatch %s -- %s: inc=%b fresh=%b copy-pair=%b@."
                    (Reg.to_string (Remat.Interference.reg g i))
                    (Reg.to_string (Remat.Interference.reg g j))
                    a b !copy_between
                end
            | _ -> ())
        alive)
    alive;
  (* Any fresh node missing on the incremental side? *)
  for fi = 0 to Remat.Interference.n_nodes fresh - 1 do
    let r = Remat.Interference.reg fresh fi in
    match Remat.Interference.index_opt g r with
    | Some i when Remat.Interference.alive g i -> ()
    | _ ->
        Format.printf "rebuild node %s absent/dead incrementally@."
          (Reg.to_string r)
  done

let () =
  let path = Sys.argv.(1) in
  let mode =
    if Array.length Sys.argv > 2 then
      Option.get (Remat.Mode.of_string Sys.argv.(2))
    else Remat.Mode.Chaitin_remat
  in
  if Array.length Sys.argv > 3 then begin
    let target = Sys.argv.(3) in
    let cfg0 = Iloc.Parser.routine (read_file path) in
    ignore (Opt.Dce.routine cfg0);
    let cfg = Cfg.split_critical_edges cfg0 in
    let dom = Dataflow.Dominance.compute cfg in
    let loops = Dataflow.Loops.compute cfg dom in
    let rn = Remat.Renumber.run mode cfg in
    let ctx =
      Remat.Context.create ~mode ~machine:Remat.Machine.standard ~loops
        ~tags:rn.Remat.Renumber.tags
        ~split_pairs:rn.Remat.Renumber.split_pairs
        ~stats:(Remat.Stats.create ()) rn.Remat.Renumber.cfg
    in
    (* occurrences before coalescing *)
    Format.printf "=== before coalesce, occurrences of %s ===@." target;
    Cfg.iter_blocks
      (fun b ->
        Iloc.Block.iter_instrs
          (fun i ->
            let touches =
              List.exists
                (fun r -> Reg.to_string r = target)
                (Iloc.Instr.defs i @ Iloc.Instr.uses i)
            in
            if touches then
              Format.printf "  [%s] %s@." b.Iloc.Block.label
                (Iloc.Instr.to_string i))
          b)
      ctx.Remat.Context.cfg;
    Remat.Context.set_round ctx 1;
    Remat.Allocator.build_coalesce ctx;
    let g = Remat.Context.graph ctx in
    (* which nodes merged into target *)
    (let ti = ref None in
     for i = 0 to Remat.Interference.n_nodes g - 1 do
       if Reg.to_string (Remat.Interference.reg g i) = target then ti := Some i
     done;
     match !ti with
     | None -> Format.printf "no such node@."
     | Some ti ->
         let ti = Remat.Interference.find g ti in
         for i = 0 to Remat.Interference.n_nodes g - 1 do
           if Remat.Interference.find g i = ti && i <> ti then
             Format.printf "merged-in: %s@."
               (Reg.to_string (Remat.Interference.reg g i))
         done);
    Format.printf "=== after coalesce, occurrences of %s ===@." target;
    Cfg.iter_blocks
      (fun b ->
        Iloc.Block.iter_instrs
          (fun i ->
            let touches =
              List.exists
                (fun r -> Reg.to_string r = target)
                (Iloc.Instr.defs i @ Iloc.Instr.uses i)
            in
            if touches then
              Format.printf "  [%s] %s@." b.Iloc.Block.label
                (Iloc.Instr.to_string i))
          b)
      ctx.Remat.Context.cfg
  end
