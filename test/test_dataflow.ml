(* Unit and property tests for the data-flow substrate: bitsets,
   union-find, orders, dominance, loops, liveness. *)

module Bitset = Dataflow.Bitset
module Union_find = Dataflow.Union_find
module Cfg = Iloc.Cfg

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* --- bitsets --- *)

let bitset_unit =
  [
    tc "add/mem/remove" (fun () ->
        let s = Bitset.create 70 in
        Bitset.add s 0;
        Bitset.add s 69;
        Bitset.add s 8;
        check Alcotest.bool "mem 0" true (Bitset.mem s 0);
        check Alcotest.bool "mem 69" true (Bitset.mem s 69);
        check Alcotest.bool "mem 1" false (Bitset.mem s 1);
        Bitset.remove s 8;
        check Alcotest.bool "removed" false (Bitset.mem s 8);
        check Alcotest.int "cardinal" 2 (Bitset.cardinal s));
    tc "bounds checked" (fun () ->
        let s = Bitset.create 8 in
        (try
           Bitset.add s 8;
           Alcotest.fail "out of bounds accepted"
         with Invalid_argument _ -> ());
        try
          ignore (Bitset.mem s (-1));
          Alcotest.fail "negative accepted"
        with Invalid_argument _ -> ());
    tc "set operations" (fun () ->
        let a = Bitset.of_list 16 [ 1; 2; 3 ] in
        let b = Bitset.of_list 16 [ 3; 4 ] in
        let u = Bitset.copy a in
        check Alcotest.bool "union changed" true (Bitset.union_into ~dst:u b);
        check (Alcotest.list Alcotest.int) "union" [ 1; 2; 3; 4 ]
          (Bitset.elements u);
        check Alcotest.bool "union idempotent" false
          (Bitset.union_into ~dst:u b);
        let i = Bitset.copy a in
        ignore (Bitset.inter_into ~dst:i b);
        check (Alcotest.list Alcotest.int) "inter" [ 3 ] (Bitset.elements i);
        let d = Bitset.copy a in
        ignore (Bitset.diff_into ~dst:d b);
        check (Alcotest.list Alcotest.int) "diff" [ 1; 2 ] (Bitset.elements d));
    tc "capacity mismatch rejected" (fun () ->
        let a = Bitset.create 8 and b = Bitset.create 16 in
        try
          ignore (Bitset.union_into ~dst:a b);
          Alcotest.fail "capacity mismatch accepted"
        with Invalid_argument _ -> ());
    tc "iter order ascending" (fun () ->
        let s = Bitset.of_list 64 [ 63; 0; 17; 32 ] in
        check (Alcotest.list Alcotest.int) "elements" [ 0; 17; 32; 63 ]
          (Bitset.elements s));
    tc "view shares, clears, and checks capacity" (fun () ->
        let buf = Bitset.create 256 in
        Bitset.add buf 7;
        Bitset.add buf 200;
        (match Bitset.view buf 70 with
        | None -> Alcotest.fail "view refused a large-enough buffer"
        | Some v ->
            check Alcotest.int "capacity" 70 (Bitset.capacity v);
            check Alcotest.bool "cleared" true (Bitset.is_empty v);
            Bitset.add v 69;
            check (Alcotest.list Alcotest.int) "elements" [ 69 ]
              (Bitset.elements v);
            (* the view shares the buffer: its used prefix was cleared,
               bits beyond it survive *)
            check Alcotest.bool "prefix cleared" false (Bitset.mem buf 7);
            check Alcotest.bool "tail kept" true (Bitset.mem buf 200));
        check Alcotest.bool "too small refused" true
          (Bitset.view buf 10_000 = None));
  ]

(* qcheck: bitsets behave like reference integer sets *)
module IntSet = Set.Make (Int)

let ops_gen =
  QCheck.Gen.(
    list_size (int_bound 60)
      (pair (int_bound 2) (int_bound 49) (* op, idx *)))

let bitset_prop =
  QCheck.Test.make ~count:300 ~name:"bitset matches reference set"
    (QCheck.make ops_gen)
    (fun ops ->
      let s = Bitset.create 50 in
      let model = ref IntSet.empty in
      List.iter
        (fun (op, i) ->
          match op with
          | 0 ->
              Bitset.add s i;
              model := IntSet.add i !model
          | 1 ->
              Bitset.remove s i;
              model := IntSet.remove i !model
          | _ ->
              if Bitset.mem s i <> IntSet.mem i !model then
                QCheck.Test.fail_report "mem mismatch")
        ops;
      Bitset.elements s = IntSet.elements !model
      && Bitset.cardinal s = IntSet.cardinal !model)

let bitset_binop_prop =
  QCheck.Test.make ~count:300 ~name:"bitset union/inter/diff match reference"
    QCheck.(pair (list_of_size (Gen.int_bound 30) (int_bound 49))
              (list_of_size (Gen.int_bound 30) (int_bound 49)))
    (fun (la, lb) ->
      let a = Bitset.of_list 50 la and b = Bitset.of_list 50 lb in
      let sa = IntSet.of_list la and sb = IntSet.of_list lb in
      let test into set_op =
        let d = Bitset.copy a in
        ignore (into ~dst:d b);
        Bitset.elements d = IntSet.elements (set_op sa sb)
      in
      test Bitset.union_into IntSet.union
      && test Bitset.inter_into IntSet.inter
      && test Bitset.diff_into IntSet.diff)

(* The word-parallel loops must behave identically right at the byte and
   word boundaries: capacity 0 (no words), 1, 63/64/65 (one word and one
   bit either side), and a multi-word size whose last word is partial. *)
let edge_caps = [| 0; 1; 63; 64; 65; 127; 128; 200 |]

let bitset_edge_prop =
  QCheck.Test.make ~count:500
    ~name:"bitset matches reference at word-boundary capacities"
    (QCheck.make
       QCheck.Gen.(
         pair
           (int_bound (Array.length edge_caps - 1))
           (list_size (int_bound 80) (pair (int_bound 3) (int_bound 1000)))))
    (fun (ci, ops) ->
      let cap = edge_caps.(ci) in
      let s = Bitset.create cap in
      let model = ref IntSet.empty in
      List.iter
        (fun (op, raw) ->
          if cap > 0 then begin
            let i = raw mod cap in
            match op with
            | 0 ->
                Bitset.add s i;
                model := IntSet.add i !model
            | 1 ->
                Bitset.remove s i;
                model := IntSet.remove i !model
            | 2 ->
                if Bitset.mem s i <> IntSet.mem i !model then
                  QCheck.Test.fail_report "mem mismatch"
            | _ ->
                (* the unchecked accessors must agree with the checked
                   ones on every in-range index *)
                if Bitset.unsafe_mem s i <> IntSet.mem i !model then
                  QCheck.Test.fail_report "unsafe_mem mismatch"
          end)
        ops;
      Bitset.elements s = IntSet.elements !model
      && Bitset.cardinal s = IntSet.cardinal !model
      && Bitset.is_empty s = IntSet.is_empty !model
      && Bitset.equal s (Bitset.of_list cap (IntSet.elements !model)))

let bitset_edge_binop_prop =
  QCheck.Test.make ~count:400
    ~name:"bitset binops and changed flags at word-boundary capacities"
    (QCheck.make
       QCheck.Gen.(
         triple
           (int_bound (Array.length edge_caps - 1))
           (list_size (int_bound 40) (int_bound 1000))
           (list_size (int_bound 40) (int_bound 1000))))
    (fun (ci, la, lb) ->
      let cap = edge_caps.(ci) in
      let la = if cap = 0 then [] else List.map (fun x -> x mod cap) la
      and lb = if cap = 0 then [] else List.map (fun x -> x mod cap) lb in
      let a = Bitset.of_list cap la and b = Bitset.of_list cap lb in
      let sa = IntSet.of_list la and sb = IntSet.of_list lb in
      let test into set_op =
        let d = Bitset.copy a in
        let changed = into ~dst:d b in
        let expect = set_op sa sb in
        Bitset.elements d = IntSet.elements expect
        && changed = not (IntSet.equal sa expect)
      in
      test Bitset.union_into IntSet.union
      && test Bitset.inter_into IntSet.inter
      && test Bitset.diff_into IntSet.diff)

(* --- union-find --- *)

let union_find_unit =
  [
    tc "singletons" (fun () ->
        let u = Union_find.create 5 in
        check Alcotest.int "classes" 5 (Union_find.n_classes u);
        for i = 0 to 4 do
          check Alcotest.int "find self" i (Union_find.find u i)
        done);
    tc "union merges" (fun () ->
        let u = Union_find.create 6 in
        ignore (Union_find.union u 0 1);
        ignore (Union_find.union u 2 3);
        ignore (Union_find.union u 1 3);
        check Alcotest.bool "0~3" true (Union_find.same u 0 3);
        check Alcotest.bool "0~4" false (Union_find.same u 0 4);
        check Alcotest.int "classes" 3 (Union_find.n_classes u));
    tc "union_to keeps representative" (fun () ->
        let u = Union_find.create 4 in
        Union_find.union_to u ~keep:2 0;
        Union_find.union_to u ~keep:2 1;
        check Alcotest.int "rep" (Union_find.find u 2) (Union_find.find u 0);
        check Alcotest.int "rep is 2" 2 (Union_find.find u 1));
    tc "classes listing" (fun () ->
        let u = Union_find.create 4 in
        ignore (Union_find.union u 0 3);
        let cls = Union_find.classes u in
        check Alcotest.int "count" 3 (List.length cls);
        let _, members =
          List.find (fun (_, ms) -> List.length ms = 2) cls
        in
        check (Alcotest.list Alcotest.int) "members" [ 0; 3 ] members);
  ]

let union_find_prop =
  QCheck.Test.make ~count:200 ~name:"union-find equivalence closure"
    QCheck.(list_of_size (Gen.int_bound 40) (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let u = Union_find.create 20 in
      List.iter (fun (a, b) -> ignore (Union_find.union u a b)) pairs;
      (* reference: transitive closure via repeated merging of int sets *)
      let sets = ref (List.init 20 (fun i -> IntSet.singleton i)) in
      List.iter
        (fun (a, b) ->
          let sa = List.find (fun s -> IntSet.mem a s) !sets in
          let sb = List.find (fun s -> IntSet.mem b s) !sets in
          if not (IntSet.equal sa sb) then
            sets :=
              IntSet.union sa sb
              :: List.filter (fun s -> not (IntSet.equal s sa || IntSet.equal s sb)) !sets)
        pairs;
      List.length !sets = Union_find.n_classes u
      && List.for_all
           (fun s ->
             let l = IntSet.elements s in
             List.for_all (fun x -> Union_find.same u (List.hd l) x) l)
           !sets)

(* --- graphs for dominance/loop tests --- *)

(* A classic irreducible-free CFG:
          0
         / \
        1   2
        |  / \
        | 3   4
         \|  /
          5<-
          |
          6 (loop back to 5? no)  *)
let sample_cfg () =
  let src =
    "routine g\n\
     b0:\n\
    \  r1 <- ldi 1\n\
    \  cbr r1 b1 b2\n\
     b1:\n\
    \  jmp b5\n\
     b2:\n\
    \  cbr r1 b3 b4\n\
     b3:\n\
    \  jmp b5\n\
     b4:\n\
    \  jmp b5\n\
     b5:\n\
    \  ret\n"
  in
  Iloc.Parser.routine src

let loop_cfg () =
  (* 0 -> 1 (header) -> 2 (body, back edge to 1) and 1 -> 3 exit, with an
     inner loop 2 -> 2. *)
  let src =
    "routine l\n\
     b0:\n\
    \  r1 <- ldi 1\n\
    \  jmp b1\n\
     b1:\n\
    \  cbr r1 b2 b3\n\
     b2:\n\
    \  cbr r1 b2 b1\n\
     b3:\n\
    \  ret\n"
  in
  Iloc.Parser.routine src

let naive_dominators (cfg : Cfg.t) =
  (* Iterative set-based dominators: dom(entry) = {entry};
     dom(b) = {b} U inter over preds. *)
  let n = Cfg.n_blocks cfg in
  let all = List.init n (fun i -> i) |> IntSet.of_list in
  let dom = Array.make n all in
  dom.(0) <- IntSet.singleton 0;
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 1 to n - 1 do
      let preds = Cfg.preds cfg b in
      let inter =
        match preds with
        | [] -> IntSet.singleton b
        | p :: ps ->
            List.fold_left (fun acc q -> IntSet.inter acc dom.(q)) dom.(p) ps
      in
      let nd = IntSet.add b inter in
      if not (IntSet.equal nd dom.(b)) then begin
        dom.(b) <- nd;
        changed := true
      end
    done
  done;
  dom

let dominance_unit =
  [
    tc "diamond idoms" (fun () ->
        let cfg = sample_cfg () in
        let d = Dataflow.Dominance.compute cfg in
        check Alcotest.int "idom b5" 0 d.Dataflow.Dominance.idom.(5);
        check Alcotest.int "idom b3" 2 d.Dataflow.Dominance.idom.(3);
        check Alcotest.int "idom b1" 0 d.Dataflow.Dominance.idom.(1);
        check Alcotest.bool "0 dom 5" true (Dataflow.Dominance.dominates d 0 5);
        check Alcotest.bool "2 dom 5" false (Dataflow.Dominance.dominates d 2 5);
        check Alcotest.bool "strict self" false
          (Dataflow.Dominance.strictly_dominates d 3 3));
    tc "frontiers" (fun () ->
        let cfg = sample_cfg () in
        let d = Dataflow.Dominance.compute cfg in
        let df = Dataflow.Dominance.frontiers cfg d in
        check (Alcotest.list Alcotest.int) "df b1" [ 5 ]
          (Bitset.elements df.(1));
        check (Alcotest.list Alcotest.int) "df b3" [ 5 ]
          (Bitset.elements df.(3));
        check (Alcotest.list Alcotest.int) "df b2" [ 5 ]
          (Bitset.elements df.(2));
        check (Alcotest.list Alcotest.int) "df b0" []
          (Bitset.elements df.(0)));
    tc "iterated frontier" (fun () ->
        let cfg = loop_cfg () in
        let d = Dataflow.Dominance.compute cfg in
        let df = Dataflow.Dominance.frontiers cfg d in
        (* defs in b0 and b2: DF+ must contain the loop header b1. *)
        let idf =
          Dataflow.Dominance.iterated_frontier ~n:(Cfg.n_blocks cfg) df [ 0; 2 ]
        in
        check Alcotest.bool "header in DF+" true (Bitset.mem idf 1));
    tc "postdominators" (fun () ->
        let cfg = sample_cfg () in
        let pd, exit = Dataflow.Dominance.postdominators cfg in
        check Alcotest.int "virtual exit" 6 exit;
        (* b5 postdominates every block. *)
        for b = 0 to 5 do
          check Alcotest.bool
            (Printf.sprintf "b5 pdom b%d" b)
            true
            (Dataflow.Dominance.dominates pd 5 b)
        done);
    tc "matches naive dominators on fixtures" (fun () ->
        List.iter
          (fun (_, cfg) ->
            let cfg = Cfg.split_critical_edges cfg in
            let d = Dataflow.Dominance.compute cfg in
            let naive = naive_dominators cfg in
            for a = 0 to Cfg.n_blocks cfg - 1 do
              for b = 0 to Cfg.n_blocks cfg - 1 do
                check Alcotest.bool
                  (Printf.sprintf "dom %d %d" a b)
                  (IntSet.mem a naive.(b))
                  (Dataflow.Dominance.dominates d a b)
              done
            done)
          (Testutil.all_fixed ()))
  ]

let loops_unit =
  [
    tc "loop nesting" (fun () ->
        let cfg = loop_cfg () in
        let d = Dataflow.Dominance.compute cfg in
        let l = Dataflow.Loops.compute cfg d in
        check Alcotest.int "two loops" 2 (Array.length l.Dataflow.Loops.loops);
        check Alcotest.int "b0 depth" 0 l.Dataflow.Loops.depth.(0);
        check Alcotest.int "b1 depth" 1 l.Dataflow.Loops.depth.(1);
        check Alcotest.int "b2 depth" 2 l.Dataflow.Loops.depth.(2);
        check Alcotest.int "b3 depth" 0 l.Dataflow.Loops.depth.(3));
    tc "weights" (fun () ->
        let cfg = loop_cfg () in
        let d = Dataflow.Dominance.compute cfg in
        let l = Dataflow.Loops.compute cfg d in
        check (Alcotest.float 1e-9) "depth 0" 1.0 (Dataflow.Loops.weight l 0);
        check (Alcotest.float 1e-9) "depth 1" 10.0 (Dataflow.Loops.weight l 1);
        check (Alcotest.float 1e-9) "depth 2" 100.0 (Dataflow.Loops.weight l 2));
    tc "no loops in dag" (fun () ->
        let cfg = sample_cfg () in
        let d = Dataflow.Dominance.compute cfg in
        let l = Dataflow.Loops.compute cfg d in
        check Alcotest.int "zero" 0 (Array.length l.Dataflow.Loops.loops));
  ]

(* --- liveness --- *)

let liveness_unit =
  [
    tc "straight-line liveness" (fun () ->
        let cfg = Testutil.straight () in
        let lv = Dataflow.Liveness.compute cfg in
        check (Alcotest.list Alcotest.string) "live-in entry" []
          (List.map Iloc.Reg.to_string (Dataflow.Liveness.live_in lv 0)));
    tc "loop keeps accumulator live" (fun () ->
        let cfg = Testutil.counted_loop () in
        let lv = Dataflow.Liveness.compute cfg in
        (* acc (r2) and i (r1) are live around the loop header (block 1). *)
        let live_in_head =
          List.map Iloc.Reg.to_string (Dataflow.Liveness.live_in lv 1)
        in
        check Alcotest.bool "i live" true (List.mem "r1" live_in_head);
        check Alcotest.bool "acc live" true (List.mem "r2" live_in_head));
    tc "dead value not live" (fun () ->
        let src =
          "routine x\nentry:\n  r1 <- ldi 1\n  r2 <- ldi 2\n  print r1\n  ret\n"
        in
        let cfg = Iloc.Parser.routine src in
        let lv = Dataflow.Liveness.compute cfg in
        check Alcotest.bool "r2 not live in" false
          (Dataflow.Liveness.live_in_mem lv 0 (Iloc.Reg.make 2 Iloc.Reg.Int)));
    tc "branch-dependent liveness" (fun () ->
        let cfg = Testutil.diamond () in
        let lv = Dataflow.Liveness.compute cfg in
        (* x (r2) is live into both arms and the join. *)
        let x = Iloc.Reg.make 2 Iloc.Reg.Int in
        check Alcotest.bool "then" true (Dataflow.Liveness.live_in_mem lv 1 x);
        check Alcotest.bool "else" true (Dataflow.Liveness.live_in_mem lv 2 x);
        check Alcotest.bool "join" true (Dataflow.Liveness.live_in_mem lv 3 x));
    tc "ssa form rejected" (fun () ->
        let ssa = Ssa.Construct.run (Testutil.diamond ()) in
        try
          ignore (Dataflow.Liveness.compute ssa);
          Alcotest.fail "liveness accepted SSA form"
        with Invalid_argument _ -> ());
  ]

(* --- boundary liveness: |U|-compressed rows vs the dense rows --- *)

(* A routine whose second block upward-exposes exactly [k] integer
   registers, so the boundary universe has exactly [k] members — sized
   to straddle the bitset word width. *)
let k_crossing_routine k =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "routine x\nentry:\n";
  for i = 1 to k do
    Buffer.add_string buf (Printf.sprintf "  r%d <- ldi %d\n" i i)
  done;
  Buffer.add_string buf "  jmp next\nnext:\n";
  for i = 1 to k do
    Buffer.add_string buf (Printf.sprintf "  print r%d\n" i)
  done;
  Buffer.add_string buf "  ret\n";
  Iloc.Parser.routine (Buffer.contents buf)

let boundary_agrees what cfg =
  let fl = Iloc.Flat.of_routine cfg in
  let dense = Dataflow.Liveness.compute_flat fl in
  let bound = Dataflow.Liveness.Boundary.compute fl in
  let regs = Cfg.all_regs cfg in
  for b = 0 to Cfg.n_blocks cfg - 1 do
    Iloc.Reg.Set.iter
      (fun r ->
        check Alcotest.bool
          (Printf.sprintf "%s: live-in b%d %s" what b (Iloc.Reg.to_string r))
          (Dataflow.Liveness.live_in_mem dense b r)
          (Dataflow.Liveness.Boundary.live_in_mem bound b r);
        check Alcotest.bool
          (Printf.sprintf "%s: live-out b%d %s" what b (Iloc.Reg.to_string r))
          (Dataflow.Liveness.live_out_mem dense b r)
          (Dataflow.Liveness.Boundary.live_out_mem bound b r))
      regs
  done;
  bound

let boundary_unit =
  [
    tc "empty universe" (fun () ->
        (* Everything is defined before use within its block, so nothing
           is upward-exposed and every row is empty. *)
        let cfg =
          Iloc.Parser.routine
            "routine x\n\
             entry:\n\
            \  r1 <- ldi 1\n\
            \  print r1\n\
            \  jmp next\n\
             next:\n\
            \  r2 <- ldi 2\n\
            \  print r2\n\
            \  ret\n"
        in
        let bound = boundary_agrees "empty" cfg in
        check Alcotest.int "universe size" 0
          (Dataflow.Reg_index.count
             bound.Dataflow.Liveness.Boundary.uindex));
    tc "single-block routine" (fun () ->
        let cfg =
          Iloc.Parser.routine
            "routine x\nentry:\n  r1 <- ldi 1\n  print r1\n  ret\n"
        in
        let bound = boundary_agrees "single" cfg in
        check Alcotest.int "universe size" 0
          (Dataflow.Reg_index.count
             bound.Dataflow.Liveness.Boundary.uindex);
        check Alcotest.bool "r1 not boundary-live" false
          (Dataflow.Liveness.Boundary.live_in_mem bound 0
             (Iloc.Reg.make 1 Iloc.Reg.Int)));
    tc "universe at the word edges" (fun () ->
        (* |U| = 63, 64, 65: one below, exactly at, and one above the
           bitset word width, where row-width bugs would bite. *)
        List.iter
          (fun k ->
            let cfg = k_crossing_routine k in
            let bound =
              boundary_agrees (Printf.sprintf "|U|=%d" k) cfg
            in
            check Alcotest.int
              (Printf.sprintf "universe size %d" k)
              k
              (Dataflow.Reg_index.count
                 bound.Dataflow.Liveness.Boundary.uindex))
          [ 63; 64; 65 ]);
  ]

(* --- open-addressing int set --- *)

let hash_set_unit =
  [
    tc "add/mem/remove/cardinal" (fun () ->
        let h = Dataflow.Hash_set.create () in
        check Alcotest.bool "empty" false (Dataflow.Hash_set.mem h 7);
        Dataflow.Hash_set.add h 7;
        Dataflow.Hash_set.add h 0;
        Dataflow.Hash_set.add h 7;
        check Alcotest.bool "mem 7" true (Dataflow.Hash_set.mem h 7);
        check Alcotest.bool "mem 0" true (Dataflow.Hash_set.mem h 0);
        check Alcotest.int "cardinal dedups" 2 (Dataflow.Hash_set.cardinal h);
        Dataflow.Hash_set.remove h 7;
        check Alcotest.bool "removed" false (Dataflow.Hash_set.mem h 7);
        check Alcotest.int "cardinal after remove" 1
          (Dataflow.Hash_set.cardinal h));
    tc "growth keeps members" (fun () ->
        let h = Dataflow.Hash_set.create ~cap:4 () in
        for i = 0 to 999 do
          Dataflow.Hash_set.add h (i * 17)
        done;
        check Alcotest.int "cardinal" 1000 (Dataflow.Hash_set.cardinal h);
        for i = 0 to 999 do
          if not (Dataflow.Hash_set.mem h (i * 17)) then
            Alcotest.failf "lost key %d" (i * 17)
        done;
        check Alcotest.bool "absent key" false (Dataflow.Hash_set.mem h 1));
    tc "tombstone churn" (fun () ->
        (* Insert/remove cycles over a small key range force tombstone
           reuse and same-size rehashes. *)
        let h = Dataflow.Hash_set.create ~cap:16 () in
        for round = 0 to 99 do
          for i = 0 to 19 do
            Dataflow.Hash_set.add h i
          done;
          for i = 0 to 19 do
            if (i + round) mod 2 = 0 then Dataflow.Hash_set.remove h i
          done
        done;
        for i = 0 to 19 do
          check Alcotest.bool
            (Printf.sprintf "key %d" i)
            ((i + 99) mod 2 <> 0)
            (Dataflow.Hash_set.mem h i)
        done);
    tc "churn keeps capacity bounded" (fun () ->
        (* The coalesce/spill loop's add/remove traffic leaves tombstones
           behind; the rehash policy must convert that churn into
           same-capacity purges, not unbounded doubling.  10k cycles at
           a live count of at most 12 must end with a table sized by the
           high-water cardinality, not by the total insert count. *)
        let h = Dataflow.Hash_set.create ~cap:16 () in
        for round = 0 to 9_999 do
          let base = round * 13 in
          for i = 0 to 11 do
            Dataflow.Hash_set.add h (base + i)
          done;
          for i = 0 to 11 do
            Dataflow.Hash_set.remove h (base + i)
          done
        done;
        check Alcotest.int "empty after churn" 0
          (Dataflow.Hash_set.cardinal h);
        let cap = Dataflow.Hash_set.capacity h in
        if cap > 64 then
          Alcotest.failf "churn grew capacity to %d (live never exceeded 12)"
            cap;
        check Alcotest.bool "tombstones below capacity" true
          (Dataflow.Hash_set.tombstones h < cap));
    tc "clear empties" (fun () ->
        let h = Dataflow.Hash_set.create () in
        Dataflow.Hash_set.add h 3;
        Dataflow.Hash_set.clear h;
        check Alcotest.int "cardinal" 0 (Dataflow.Hash_set.cardinal h);
        check Alcotest.bool "mem" false (Dataflow.Hash_set.mem h 3));
    tc "negative key rejected" (fun () ->
        let h = Dataflow.Hash_set.create () in
        try
          Dataflow.Hash_set.add h (-1);
          Alcotest.fail "accepted a negative key"
        with Invalid_argument _ -> ());
    tc "iter visits each member once" (fun () ->
        let h = Dataflow.Hash_set.create () in
        List.iter (Dataflow.Hash_set.add h) [ 5; 9; 5; 123; 64 ];
        Dataflow.Hash_set.remove h 9;
        let seen = ref [] in
        Dataflow.Hash_set.iter (fun k -> seen := k :: !seen) h;
        check
          (Alcotest.list Alcotest.int)
          "members" [ 5; 64; 123 ]
          (List.sort Int.compare !seen));
  ]

let hash_set_prop =
  QCheck.Test.make ~count:200 ~name:"hash set matches reference set"
    QCheck.(list (pair (int_bound 2) (int_bound 100)))
    (fun ops ->
      let module IS = Set.Make (Int) in
      let h = Dataflow.Hash_set.create ~cap:4 () in
      let model = ref IS.empty in
      List.for_all
        (fun (op, key) ->
          (match op with
          | 0 ->
              Dataflow.Hash_set.add h key;
              model := IS.add key !model
          | 1 ->
              Dataflow.Hash_set.remove h key;
              model := IS.remove key !model
          | _ -> ());
          Dataflow.Hash_set.mem h key = IS.mem key !model
          && Dataflow.Hash_set.cardinal h = IS.cardinal !model)
        ops)

(* naive per-register liveness for the property test: r is live-in at b
   iff some path from b reaches a use of r with no intervening def. *)
let naive_live_in (cfg : Cfg.t) (r : Iloc.Reg.t) =
  let n = Cfg.n_blocks cfg in
  let uses_before_def = Array.make n false in
  let defines = Array.make n false in
  Cfg.iter_blocks
    (fun b ->
      let defined = ref false in
      Iloc.Block.iter_instrs
        (fun i ->
          if (not !defined) && List.exists (Iloc.Reg.equal r) (Iloc.Instr.uses i)
          then uses_before_def.(b.Iloc.Block.id) <- true;
          if List.exists (Iloc.Reg.equal r) (Iloc.Instr.defs i) then
            defined := true)
        b;
      defines.(b.Iloc.Block.id) <- !defined)
    cfg;
  let live = Array.make n false in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to n - 1 do
      let v =
        uses_before_def.(b)
        || (not defines.(b))
           && List.exists (fun s -> live.(s)) (Cfg.succs cfg b)
      in
      if v && not live.(b) then begin
        live.(b) <- true;
        changed := true
      end
    done
  done;
  live

let liveness_prop =
  QCheck.Test.make ~count:60 ~name:"liveness matches naive per-register"
    Testutil.Gen_prog.arbitrary_cfg
    (fun cfg ->
      let lv = Dataflow.Liveness.compute cfg in
      Iloc.Reg.Set.for_all
        (fun r ->
          let naive = naive_live_in cfg r in
          let ok = ref true in
          for b = 0 to Cfg.n_blocks cfg - 1 do
            if Dataflow.Liveness.live_in_mem lv b r <> naive.(b) then ok := false
          done;
          !ok)
        (Cfg.all_regs cfg))

(* The round-robin fixpoint the worklist solver replaced: sweep every
   block until nothing changes.  Slower but obviously correct, so the
   worklist (which revisits only predecessors of changed blocks) is
   cross-checked against it on random programs. *)
let round_robin_liveness (cfg : Cfg.t) =
  let module RS = Iloc.Reg.Set in
  let n = Cfg.n_blocks cfg in
  let ue = Array.make n RS.empty and kill = Array.make n RS.empty in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Iloc.Block.id in
      Iloc.Block.iter_instrs
        (fun i ->
          List.iter
            (fun r ->
              if not (RS.mem r kill.(id)) then ue.(id) <- RS.add r ue.(id))
            (Iloc.Instr.uses i);
          List.iter (fun r -> kill.(id) <- RS.add r kill.(id)) (Iloc.Instr.defs i))
        b)
    cfg;
  let live_in = Array.make n RS.empty and live_out = Array.make n RS.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> RS.union acc live_in.(s))
          RS.empty (Cfg.succs cfg b)
      in
      live_out.(b) <- out;
      let inn = RS.union ue.(b) (RS.diff out kill.(b)) in
      if not (RS.equal inn live_in.(b)) then begin
        live_in.(b) <- inn;
        changed := true
      end
    done
  done;
  (live_in, live_out)

let worklist_vs_round_robin_prop =
  QCheck.Test.make ~count:60 ~name:"worklist liveness matches round-robin"
    Testutil.Gen_prog.arbitrary_cfg
    (fun cfg ->
      let lv = Dataflow.Liveness.compute cfg in
      let rin, rout = round_robin_liveness cfg in
      let reach = Dataflow.Order.reachable cfg in
      let regs = Cfg.all_regs cfg in
      let ok = ref true in
      for b = 0 to Cfg.n_blocks cfg - 1 do
        (* the worklist only visits reachable blocks; the round-robin
           sweep also converges on unreachable ones, whose liveness no
           consumer reads *)
        if reach.(b) then
          Iloc.Reg.Set.iter
            (fun r ->
              if
                Dataflow.Liveness.live_in_mem lv b r <> Iloc.Reg.Set.mem r rin.(b)
                || Dataflow.Liveness.live_out_mem lv b r
                   <> Iloc.Reg.Set.mem r rout.(b)
              then ok := false)
            regs
      done;
      !ok)

(* depth-first orders: permutations of the reachable blocks, with the
   entry last in postorder / first in reverse postorder *)
let order_prop =
  QCheck.Test.make ~count:80 ~name:"postorder and RPO are consistent"
    Testutil.Gen_prog.arbitrary_cfg
    (fun cfg ->
      let po = Dataflow.Order.postorder cfg in
      let rpo = Dataflow.Order.reverse_postorder cfg in
      let reach = Dataflow.Order.reachable cfg in
      let n_reach =
        Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 reach
      in
      Array.length po = n_reach
      && Array.length rpo = n_reach
      && Array.for_all (fun b -> reach.(b)) po
      && List.sort_uniq Int.compare (Array.to_list po)
         = List.sort Int.compare (Array.to_list po)
      && po.(Array.length po - 1) = cfg.Cfg.entry
      && rpo.(0) = cfg.Cfg.entry
      (* a block's successors appear before it in postorder unless the
         edge is a back edge (target already on the DFS stack); weaker
         sanity: rpo reverses po exactly *)
      && Array.for_all2 ( = ) rpo
           (Array.init (Array.length po) (fun i ->
                po.(Array.length po - 1 - i))))

(* dominators on random structured programs match the naive quadratic
   set-based computation *)
let dominance_prop =
  QCheck.Test.make ~count:60 ~name:"dominators match naive on random CFGs"
    Testutil.Gen_prog.arbitrary_cfg
    (fun cfg ->
      let cfg = Cfg.split_critical_edges cfg in
      let d = Dataflow.Dominance.compute cfg in
      let naive = naive_dominators cfg in
      let ok = ref true in
      for a = 0 to Cfg.n_blocks cfg - 1 do
        for b = 0 to Cfg.n_blocks cfg - 1 do
          if Dataflow.Dominance.dominates d a b <> IntSet.mem a naive.(b) then
            ok := false
        done
      done;
      !ok)

(* structural loop invariants on random programs *)
let loops_prop =
  QCheck.Test.make ~count:60 ~name:"loop structure invariants"
    Testutil.Gen_prog.arbitrary_cfg
    (fun cfg ->
      let cfg = Cfg.split_critical_edges cfg in
      let d = Dataflow.Dominance.compute cfg in
      let l = Dataflow.Loops.compute cfg d in
      Array.for_all
        (fun (loop : Dataflow.Loops.loop) ->
          (* the header is in the body and dominates every body block *)
          Bitset.mem loop.body loop.header
          && Bitset.fold
               (fun b acc ->
                 acc && Dataflow.Dominance.dominates d loop.header b)
               loop.body true
          (* nesting depth of the header matches the loop's depth *)
          && l.Dataflow.Loops.depth.(loop.header) >= loop.depth)
        l.Dataflow.Loops.loops)

(* postdominance: the virtual exit postdominates everything reachable *)
let postdom_prop =
  QCheck.Test.make ~count:60 ~name:"virtual exit postdominates"
    Testutil.Gen_prog.arbitrary_cfg
    (fun cfg ->
      let pd, exit = Dataflow.Dominance.postdominators cfg in
      let reach = Dataflow.Order.reachable cfg in
      let ok = ref true in
      for b = 0 to Cfg.n_blocks cfg - 1 do
        if reach.(b) && not (Dataflow.Dominance.dominates pd exit b) then
          ok := false
      done;
      !ok)

let props = List.map QCheck_alcotest.to_alcotest
    [ bitset_prop; bitset_binop_prop; bitset_edge_prop; bitset_edge_binop_prop;
      union_find_prop; liveness_prop; worklist_vs_round_robin_prop;
      order_prop; dominance_prop; loops_prop; postdom_prop; hash_set_prop ]

let () =
  Alcotest.run "dataflow"
    [
      ("bitset", bitset_unit);
      ("union-find", union_find_unit);
      ("dominance", dominance_unit);
      ("loops", loops_unit);
      ("liveness", liveness_unit);
      ("boundary", boundary_unit);
      ("hash-set", hash_set_unit);
      ("properties", props);
    ]
