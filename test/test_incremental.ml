(* The incremental interference graph: in-place coalescing must leave
   the same graph a from-scratch rebuild would produce, and the allocator
   must perform at most one full build per spill round. *)

module Cfg = Iloc.Cfg
module Reg = Iloc.Reg
module Instr = Iloc.Instr

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

(* Run a routine up to the coalescing fixpoint under a fresh context:
   DCE (dead definitions would otherwise carry clobber edges that no
   rebuild of the rewritten routine can reproduce), critical-edge split,
   renumber, then the allocator's incremental build–coalesce loop. *)
let coalesced_context mode cfg0 =
  ignore (Opt.Dce.routine cfg0);
  let cfg = Cfg.split_critical_edges cfg0 in
  let dom = Dataflow.Dominance.compute cfg in
  let loops = Dataflow.Loops.compute cfg dom in
  let rn = Remat.Renumber.run mode cfg in
  let ctx =
    Remat.Context.create ~mode ~machine:Remat.Machine.standard ~loops
      ~tags:rn.Remat.Renumber.tags ~split_pairs:rn.Remat.Renumber.split_pairs
      ~stats:(Remat.Stats.create ()) rn.Remat.Renumber.cfg
  in
  Remat.Context.set_round ctx 1;
  Remat.Allocator.build_coalesce ctx;
  ctx

(* Compare the incrementally maintained graph against a from-scratch
   rebuild of the coalesced routine.  Chaitin's neighbor-set union is a
   safe over-approximation of the rebuild, exact except around nodes the
   coalescer touched: [build] omits the dst–src edge at a copy
   definition, so a merge that enlarges a copy's source range lets the
   rebuild drop an edge the union keeps; and collapsing a φ copy-cycle
   can leave a merged range with fewer occurrences than its
   constituents, shedding rebuild edges that the union retains.  Both
   kinds of slack are incident to a node that absorbed another in a
   merge.  The invariant checked:

   - identical node sets (alive nodes <-> rebuild nodes);
   - no missed interference: every rebuild edge is present in-place
     (the correctness-critical direction — a missing edge could assign
     one register to simultaneously-live values);
   - every extra in-place edge either joins the two ranges of a copy
     still in the routine or touches a node that absorbed another, so
     untouched regions of the graph match the rebuild exactly;
   - the maintained [n_edges] counter and deduplicated adjacency agree
     with the matrix (sum of alive degrees = 2 * n_edges). *)
let matches_rebuild (ctx : Remat.Context.t) =
  let g = Remat.Context.graph ctx in
  let live = Dataflow.Liveness.compute ctx.Remat.Context.cfg in
  let fresh = Remat.Interference.build ctx.Remat.Context.cfg live in
  let n = Remat.Interference.n_nodes g in
  let alive =
    List.filter (Remat.Interference.alive g) (List.init n Fun.id)
  in
  let fresh_index i =
    Remat.Interference.index_opt fresh (Remat.Interference.reg g i)
  in
  let copy_pairs = Hashtbl.create 16 in
  Cfg.iter_instrs
    (fun _ ins ->
      if Instr.is_copy ins then
        match (ins.Instr.dst, ins.Instr.srcs) with
        | Some d, [| s |] -> (
            match
              ( Remat.Interference.index_opt g d,
                Remat.Interference.index_opt g s )
            with
            | Some di, Some si ->
                let di = Remat.Interference.find g di
                and si = Remat.Interference.find g si in
                Hashtbl.replace copy_pairs (min di si, max di si) ()
            | _ -> ())
        | _ -> ())
    ctx.Remat.Context.cfg;
  let absorbed = Array.make n false in
  List.iter
    (fun i ->
      let r = Remat.Interference.find g i in
      if r <> i then absorbed.(r) <- true)
    (List.init n Fun.id);
  let degree_sum =
    List.fold_left (fun a i -> a + Remat.Interference.degree g i) 0 alive
  in
  let dedup_adj i =
    let nbs = Remat.Interference.neighbors g i in
    List.length (List.sort_uniq Int.compare nbs) = List.length nbs
    && List.length nbs = Remat.Interference.degree g i
  in
  Remat.Interference.n_alive g = Remat.Interference.n_nodes fresh
  && degree_sum = 2 * Remat.Interference.n_edges g
  && List.for_all dedup_adj alive
  && List.for_all (fun i -> fresh_index i <> None) alive
  && List.for_all
       (fun i ->
         List.for_all
           (fun j ->
             i >= j
             ||
             match (fresh_index i, fresh_index j) with
             | Some fi, Some fj -> (
                 match
                   ( Remat.Interference.interfere g i j,
                     Remat.Interference.interfere fresh fi fj )
                 with
                 | inc, rebuilt when inc = rebuilt -> true
                 | false, true -> false (* missed interference: unsound *)
                 | _, _ ->
                     Hashtbl.mem copy_pairs (i, j)
                     || absorbed.(i) || absorbed.(j))
             | _ -> false)
           alive)
       alive

let isomorphism_prop mode name =
  QCheck.Test.make ~count:150 ~name Testutil.Gen_prog.arbitrary_cfg
    (fun cfg0 -> matches_rebuild (coalesced_context mode cfg0))

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      isomorphism_prop Remat.Mode.Chaitin_remat
        "post-coalesce graph = rebuild (chaitin)";
      isomorphism_prop Remat.Mode.Briggs_remat
        "post-coalesce graph = rebuild (briggs)";
    ]

let rewrite_tests =
  [
    tc "rewrite_physical deletes identity copies" (fun () ->
        let cfg =
          Iloc.Parser.routine
            "routine x\n\
             entry:\n\
            \  r1 <- ldi 1\n\
            \  r2 <- copy r1\n\
            \  print r2\n\
            \  ret\n"
        in
        let live = Dataflow.Liveness.compute cfg in
        let g = Remat.Interference.build cfg live in
        (* r1 and r2 do not interfere (copy source dies at the copy), so
           both may receive color 0 — the copy becomes r0 <- copy r0. *)
        let colors = Array.make (Remat.Interference.n_nodes g) (Some 0) in
        Remat.Allocator.rewrite_physical cfg g colors;
        let copies = ref 0 and instrs = ref 0 in
        Cfg.iter_instrs
          (fun _ i ->
            incr instrs;
            if Instr.is_copy i then incr copies;
            List.iter
              (fun r -> check Alcotest.int "physical" 0 (Reg.id r))
              (Instr.defs i @ Instr.uses i))
          cfg;
        check Alcotest.int "identity copy deleted" 0 !copies;
        check Alcotest.int "other instructions kept" 3 !instrs);
    tc "rewrite_physical keeps distinct-color copies" (fun () ->
        let cfg =
          Iloc.Parser.routine
            "routine x\n\
             entry:\n\
            \  r1 <- ldi 1\n\
            \  r2 <- copy r1\n\
            \  print r1\n\
            \  print r2\n\
            \  ret\n"
        in
        let live = Dataflow.Liveness.compute cfg in
        let g = Remat.Interference.build cfg live in
        let colors =
          Array.init (Remat.Interference.n_nodes g) (fun i -> Some i)
        in
        Remat.Allocator.rewrite_physical cfg g colors;
        let copies = ref 0 in
        Cfg.iter_instrs (fun _ i -> if Instr.is_copy i then incr copies) cfg;
        check Alcotest.int "copy kept" 1 !copies);
  ]

(* The acceptance bound of the refactor: on every suite kernel, in every
   mode, the allocator performs at most one full graph build (and at most
   two liveness computations: build + post-coalesce spill costs) per
   spill round, however many coalescing iterations a round takes. *)
let kernel_tests =
  List.map
    (fun mode ->
      tc
        (Printf.sprintf "one build per round on all kernels (%s)"
           (Remat.Mode.to_string mode))
        (fun () ->
          List.iter
            (fun k ->
              let cfg = Suite.Kernels.cfg_of ~optimize:true k in
              let res =
                Remat.Allocator.run ~mode ~machine:Remat.Machine.standard cfg
              in
              let stats = res.Remat.Allocator.stats in
              let builds =
                Remat.Stats.max_per_round stats Remat.Stats.Full_builds
              in
              if builds > 1 then
                Alcotest.failf "%s: %d full builds in one round"
                  k.Suite.Kernels.name builds;
              let sweeps =
                Remat.Stats.counter_total stats Remat.Stats.Coalesce_sweeps
              in
              if sweeps < res.Remat.Allocator.rounds then
                Alcotest.failf "%s: %d sweeps over %d rounds"
                  k.Suite.Kernels.name sweeps res.Remat.Allocator.rounds;
              check Alcotest.int
                (k.Suite.Kernels.name ^ " merges = coalesced copies")
                (Remat.Stats.counter_total stats Remat.Stats.Coalesced_copies)
                (Remat.Stats.counter_total stats Remat.Stats.Node_merges))
            Suite.Kernels.all))
    [ Remat.Mode.Chaitin_remat; Remat.Mode.Briggs_remat ]

let () =
  Alcotest.run "incremental"
    [
      ("graph-isomorphism", property_tests);
      ("rewrite-physical", rewrite_tests);
      ("build-counters", kernel_tests);
    ]
