(* Shared fixtures and generators for the test suites. *)

module Reg = Iloc.Reg
module Instr = Iloc.Instr
module Builder = Iloc.Builder
module Cfg = Iloc.Cfg
module Symbol = Iloc.Symbol

(* ------------------------------------------------------------------ *)
(* Fixed routines                                                      *)
(* ------------------------------------------------------------------ *)

(* Straight-line arithmetic; no control flow, no memory. *)
let straight () =
  let b = Builder.create "straight" in
  let r1 = Builder.ireg b and r2 = Builder.ireg b and r3 = Builder.ireg b in
  let f1 = Builder.freg b and f2 = Builder.freg b in
  Builder.block b "entry"
    [
      Instr.ldi r1 7;
      Instr.ldi r2 35;
      Instr.add r3 r1 r2;
      Instr.lfi f1 2.5;
      Instr.itof f2 r3;
      Instr.fmul f2 f2 f1;
      Instr.print_ r3;
      Instr.print_ f2;
    ]
    ~term:(Instr.ret (Some r3));
  Builder.finish b

(* A diamond: one φ-node for [x] at the join. *)
let diamond () =
  let b = Builder.create "diamond" in
  let c = Builder.ireg b and x = Builder.ireg b and y = Builder.ireg b in
  let t = Builder.ireg b in
  Builder.block b "entry"
    [ Instr.ldi c 1; Instr.ldi x 10; Instr.ldi y 3; Instr.cmp Instr.Gt t c y ]
    ~term:(Instr.cbr t "then" "else");
  Builder.block b "then" [ Instr.addi x x 5 ] ~term:(Instr.jmp "join");
  Builder.block b "else" [ Instr.muli x x 2 ] ~term:(Instr.jmp "join");
  Builder.block b "join" [ Instr.print_ x ] ~term:(Instr.ret (Some x));
  Builder.finish b

(* Simple counted loop: sum 0..9 into an accumulator. *)
let counted_loop () =
  let b = Builder.create "counted_loop" in
  let i = Builder.ireg b and acc = Builder.ireg b and t = Builder.ireg b in
  let zero = Builder.ireg b in
  Builder.block b "entry"
    [ Instr.ldi i 10; Instr.ldi acc 0; Instr.ldi zero 0 ]
    ~term:(Instr.jmp "head");
  Builder.block b "head"
    [ Instr.cmp Instr.Gt t i zero ]
    ~term:(Instr.cbr t "body" "exit");
  Builder.block b "body"
    [ Instr.add acc acc i; Instr.subi i i 1 ]
    ~term:(Instr.jmp "head");
  Builder.block b "exit" [ Instr.print_ acc ] ~term:(Instr.ret (Some acc));
  Builder.finish b

(* The paper's Figure 1: a pointer that is loop-invariant in the first
   loop and walks the array in the second, under enough integer register
   pressure that it spills on a 16-register machine.  The pressure values
   are loads (not rematerializable), so the allocator must keep them in
   registers or pay; the pointer's first value is a label address and
   should be rematerialized by the Briggs allocator. *)
(* The paper's Figure 1 pattern, replicated across [pointers] arrays so
   that register pressure comes from the pointers themselves: every
   pointer is loop-invariant in the first (hot) loop and walks its array
   in the second loop.  Under Chaitin's scheme each pointer is a
   multi-valued live range with mixed definitions, so a spill pays
   stores and reloads in both loops; the paper's allocator splits off the
   never-killed label-address value and rematerializes it in the first
   loop with a one-cycle immediate. *)
let fig1 ?(pointers = 20) ?(hot_iters = 40) () =
  let b = Builder.create "fig1" in
  let arr k = Printf.sprintf "a%d" k in
  for k = 0 to pointers - 1 do
    Builder.data b ~readonly:true
      ~init:(Symbol.Float_elts (List.init 8 (fun i -> float_of_int ((k * 8) + i))))
      (arr k) 8
  done;
  let ps = List.init pointers (fun _ -> Builder.ireg b) in
  let y = Builder.freg b in
  let x = Builder.freg b in
  let i = Builder.ireg b in
  let t = Builder.ireg b in
  let zero = Builder.ireg b in
  Builder.block b "entry"
    (List.concat (List.mapi (fun k p -> [ Instr.laddr p (arr k) ]) ps)
    @ [ Instr.lfi y 0.0; Instr.ldi i hot_iters ])
    ~term:(Instr.jmp "loop1");
  Builder.block b "loop1"
    (List.concat_map (fun p -> [ Instr.load x p; Instr.fadd y y x ]) ps
    @ [ Instr.subi i i 1; Instr.ldi zero 0; Instr.cmp Instr.Gt t i zero ])
    ~term:(Instr.cbr t "loop1" "mid");
  Builder.block b "mid" [ Instr.ldi i 8 ] ~term:(Instr.jmp "loop2");
  Builder.block b "loop2"
    (List.concat_map
       (fun p -> [ Instr.load x p; Instr.fadd y y x; Instr.addi p p 1 ])
       ps
    @ [ Instr.subi i i 1; Instr.ldi zero 0; Instr.cmp Instr.Gt t i zero ])
    ~term:(Instr.cbr t "loop2" "exit");
  Builder.block b "exit"
    [ Instr.print_ y ]
    ~term:(Instr.ret (Some i));
  Builder.finish b

(* Many simultaneously-live float and int values. *)
let high_pressure ?(n = 24) () =
  let b = Builder.create "high_pressure" in
  Builder.data b ~readonly:false
    ~init:(Symbol.Int_elts (List.init n (fun i -> i + 1)))
    "m" n;
  let base = Builder.ireg b in
  let vs = List.init n (fun _ -> Builder.ireg b) in
  let acc = Builder.ireg b in
  Builder.block b "entry"
    ((Instr.laddr base "m"
      :: List.concat (List.mapi (fun k v -> [ Instr.loadi v base k ]) vs))
    @ (Instr.ldi acc 0 :: List.map (fun v -> Instr.add acc acc v) vs)
    @ List.map (fun v -> Instr.mul acc acc v) vs
    @ [ Instr.print_ acc ])
    ~term:(Instr.ret (Some acc));
  Builder.finish b

let all_fixed () =
  [
    ("straight", straight ());
    ("diamond", diamond ());
    ("counted_loop", counted_loop ());
    ("fig1", fig1 ());
    ("high_pressure", high_pressure ());
  ]

(* ------------------------------------------------------------------ *)
(* Execution helpers                                                   *)
(* ------------------------------------------------------------------ *)

let run_ok ?fuel cfg =
  match Sim.Interp.run ?fuel cfg with
  | outcome -> outcome
  | exception Sim.Interp.Runtime_error msg ->
      Alcotest.failf "%s failed to run: %s" cfg.Cfg.name msg

let assert_equiv ~what reference candidate =
  let a = run_ok reference and b = run_ok candidate in
  if not (Sim.Interp.outcome_equal a b) then
    Alcotest.failf "%s: allocated code diverges from original (%s)" what
      reference.Cfg.name

(* Every test allocation runs under the static translation validator:
   an unfaithful allocation fails the suite even when no execution
   exercises the broken path. *)
let alloc ?mode ?machine cfg =
  let res =
    match Remat.Allocator.allocate ~verify:true ?mode ?machine cfg with
    | res -> res
    | exception Remat.Allocator.Verification_error es ->
        Alcotest.failf "static verification failed for %s: %s" cfg.Cfg.name
          (String.concat "; " es)
  in
  (match Remat.Allocator.check res with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "allocation check failed for %s: %s" cfg.Cfg.name
        (String.concat "; " es));
  res

(* Allocate under [mode]/[machine] and require observational equivalence
   with the original routine. *)
let alloc_equiv ?mode ?machine cfg =
  let res = alloc ?mode ?machine cfg in
  assert_equiv ~what:"alloc_equiv" cfg res.Remat.Allocator.cfg;
  res

(* ------------------------------------------------------------------ *)
(* Random structured programs                                          *)
(* ------------------------------------------------------------------ *)

(* The generator proper lives in [Fuzz.Gen] (one home for tests, the
   [ralloc fuzz] campaign driver and the reducer); the tests draw a seed
   and delegate.  Generated routines are terminating, definitely assigned
   and memory safe by construction — see [Fuzz.Gen] for the invariants. *)
module Gen_prog = struct
  let gen_cfg : Cfg.t QCheck.Gen.t =
   fun st -> Fuzz.Gen.generate (QCheck.Gen.int_bound 0x3FFFFFFF st)

  let arbitrary_cfg =
    QCheck.make gen_cfg ~print:(fun cfg -> Iloc.Printer.routine_to_string cfg)
end

