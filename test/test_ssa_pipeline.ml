(* Tests for the decoupled SSA allocation pipeline (lib/core/ssa_alloc):
   per-fuzz-config QCheck properties over generated routines, and the
   chordality invariant the greedy dominator-preorder coloring must meet
   — never more colors than MaxLive, never more than the machine's k. *)

module Cfg = Iloc.Cfg
module Reg = Iloc.Reg

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let ssa_modes = [ Remat.Mode.Ssa_remat; Remat.Mode.Ssa_no_remat ]

let ssa_configs =
  List.concat_map
    (fun optimize ->
      List.concat_map
        (fun machine ->
          List.map
            (fun mode -> { Fuzz.Oracle.optimize; mode; machine })
            ssa_modes)
        [ Remat.Machine.standard; Fuzz.Oracle.tight ])
    [ false; true ]

(* Direct access to the pipeline's result record — the chordality bound
   is not observable through [Allocator.allocate]. *)
let ssa_run ~mode ~(machine : Remat.Machine.t) cfg =
  Remat.Ssa_alloc.run ~mode ~machine ~max_rounds:64
    ~stats:(Remat.Stats.create ())
    (Cfg.split_critical_edges cfg)

(* The full per-config obligation, one generated routine at a time:
   allocation succeeds, output is a valid φ-free routine within k, the
   static verifier accepts it (or stays agnostic), the simulator agrees
   with the source, and the coloring met the chordal bound. *)
let config_property (c : Fuzz.Oracle.config) cfg =
  let cfg = if c.optimize then Opt.Pipeline.run cfg else cfg in
  let machine = c.machine in
  let res =
    Remat.Allocator.allocate ~mode:c.mode ~machine ~verify:false cfg
  in
  let out = res.Remat.Allocator.cfg in
  (* Valid, φ-free, within k. *)
  (match Iloc.Validate.routine out with
  | Ok () -> ()
  | Error es ->
      QCheck.Test.fail_reportf "invalid output: %s"
        (String.concat "; " (List.map Iloc.Validate.error_to_string es)));
  if Cfg.in_ssa out then QCheck.Test.fail_report "output still in SSA form";
  Reg.Set.iter
    (fun r ->
      let k =
        if Reg.is_float r then machine.Remat.Machine.k_float
        else machine.Remat.Machine.k_int
      in
      if Reg.id r >= k then
        QCheck.Test.fail_reportf "register %s beyond k=%d" (Reg.to_string r) k)
    (Cfg.all_regs out);
  (* Static verification: sound or agnostic, never a rejection. *)
  (match
     Verify.Check.routine ~input:cfg ~output:out
       ~k_int:machine.Remat.Machine.k_int
       ~k_float:machine.Remat.Machine.k_float
   with
  | Ok _ -> ()
  | Error es when List.for_all Verify.Error.is_unsupported es -> ()
  | Error es ->
      QCheck.Test.fail_reportf "static rejection: %s"
        (String.concat "; " (List.map Verify.Error.to_string es)));
  (* Dynamic equivalence. *)
  if
    not
      (Sim.Interp.outcome_equal (Sim.Interp.run cfg) (Sim.Interp.run out))
  then QCheck.Test.fail_report "simulated outcome differs from the source";
  (* Chordality: the greedy coloring never needs more than MaxLive
     colors per class, and post-spilling MaxLive fits the machine. *)
  let r = ssa_run ~mode:c.mode ~machine cfg in
  if r.Remat.Ssa_alloc.max_colors_int > r.Remat.Ssa_alloc.max_live_int then
    QCheck.Test.fail_reportf "int colors %d exceed MaxLive %d"
      r.Remat.Ssa_alloc.max_colors_int r.Remat.Ssa_alloc.max_live_int;
  if r.Remat.Ssa_alloc.max_colors_float > r.Remat.Ssa_alloc.max_live_float
  then
    QCheck.Test.fail_reportf "float colors %d exceed MaxLive %d"
      r.Remat.Ssa_alloc.max_colors_float r.Remat.Ssa_alloc.max_live_float;
  if r.Remat.Ssa_alloc.max_live_int > machine.Remat.Machine.k_int then
    QCheck.Test.fail_reportf "int MaxLive %d exceeds k=%d"
      r.Remat.Ssa_alloc.max_live_int machine.Remat.Machine.k_int;
  if r.Remat.Ssa_alloc.max_live_float > machine.Remat.Machine.k_float then
    QCheck.Test.fail_reportf "float MaxLive %d exceeds k=%d"
      r.Remat.Ssa_alloc.max_live_float machine.Remat.Machine.k_float;
  true

let per_config_props =
  List.map
    (fun (c : Fuzz.Oracle.config) ->
      QCheck.Test.make ~count:40
        ~name:
          (Printf.sprintf "SSA pipeline obligations hold under %s"
             (Fuzz.Oracle.config_name c))
        Testutil.Gen_prog.arbitrary_cfg (config_property c))
    ssa_configs

(* --- directed pipeline checks --- *)

let directed =
  [
    tc "fixtures allocate, verify and agree under both SSA modes" (fun () ->
        List.iter
          (fun (name, cfg) ->
            List.iter
              (fun mode ->
                let res =
                  Remat.Allocator.allocate ~mode ~verify:true cfg
                in
                let out = res.Remat.Allocator.cfg in
                if
                  not
                    (Sim.Interp.outcome_equal (Sim.Interp.run cfg)
                       (Sim.Interp.run out))
                then
                  Alcotest.failf "%s under %s: outcome differs" name
                    (Remat.Mode.to_string mode))
              ssa_modes)
          (Testutil.all_fixed ()));
    tc "rounds converge and report spills on a pressured fixture" (fun () ->
        let cfg = Testutil.high_pressure () in
        let r =
          ssa_run ~mode:Remat.Mode.Ssa_remat ~machine:Fuzz.Oracle.tight cfg
        in
        check Alcotest.bool "at least one spill round" true
          (r.Remat.Ssa_alloc.rounds > 1);
        check Alcotest.bool "something spilled" true
          (r.Remat.Ssa_alloc.spilled_memory + r.Remat.Ssa_alloc.spilled_remat
          > 0);
        check Alcotest.bool "MaxLive within k" true
          (r.Remat.Ssa_alloc.max_live_int <= 6
          && r.Remat.Ssa_alloc.max_live_float <= 6));
    tc "ssa-no-remat never rematerializes" (fun () ->
        let cfg = Testutil.high_pressure () in
        let r =
          ssa_run ~mode:Remat.Mode.Ssa_no_remat ~machine:Fuzz.Oracle.tight cfg
        in
        check Alcotest.int "remat spills" 0 r.Remat.Ssa_alloc.spilled_remat);
    tc "incremental allocation declines SSA modes" (fun () ->
        let cfg = Testutil.counted_loop () in
        let snap =
          Remat.Allocator.snapshot ~mode:Remat.Mode.Ssa_remat cfg
        in
        check Alcotest.bool "no incremental path" true
          (Remat.Allocator.allocate_incremental snap cfg = None));
  ]

let () =
  Alcotest.run "ssa-pipeline"
    [
      ("directed", directed);
      ("properties", List.map QCheck_alcotest.to_alcotest per_config_props);
    ]
