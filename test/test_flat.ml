(* The flat arena bridge: [Flat.to_routine (Flat.of_routine r)] must be
   structurally identical to [r] for every routine the generator can
   produce, and for directed corners the generator is unlikely to hit
   (empty blocks, three-source instructions, float immediates including
   NaN, every opcode).  Also covers the explicit [Instr.equal]/
   [Instr.hash] pair the bridge's interning relies on. *)

module Cfg = Iloc.Cfg
module Block = Iloc.Block
module Instr = Iloc.Instr
module Reg = Iloc.Reg
module Flat = Iloc.Flat
module Symbol = Iloc.Symbol

let roundtrip cfg = Flat.to_routine (Flat.of_routine cfg)

let check_roundtrip name cfg =
  let back = roundtrip cfg in
  if not (Cfg.structural_equal back cfg) then
    Alcotest.failf "%s: round-trip not structurally equal:@.%s@.vs@.%s" name
      (Cfg.to_string cfg) (Cfg.to_string back)

(* --- directed: one routine exercising every opcode ------------------- *)

let ri n = Reg.make n Reg.Int
let rf n = Reg.make n Reg.Float

let every_opcode_cfg () =
  let a = ri 1 and b = ri 2 and c = ri 3 in
  let x = rf 4 and y = rf 5 and z = rf 6 in
  let sym = Symbol.make "tab" 8 in
  let ro = Symbol.make ~readonly:true ~init:(Symbol.Int_elts [ 7 ]) "ktab" 4 in
  let b0 =
    Block.make ~id:0 ~label:"entry"
      ~body:
        [
          Instr.ldi a 42;
          Instr.lfi x 3.5;
          Instr.lfi y Float.nan;
          Instr.laddr b ~off:3 "tab";
          Instr.lfp c 16;
          Instr.ldro b "ktab" 2;
          Instr.add c a b;
          Instr.sub c a b;
          Instr.mul c a b;
          Instr.div c a b;
          Instr.rem c a b;
          Instr.cmp Instr.Lt c a b;
          Instr.addi c a 5;
          Instr.subi c a (-5);
          Instr.muli c a 7;
          Instr.fadd z x y;
          Instr.fsub z x y;
          Instr.fmul z x y;
          Instr.fdiv z x y;
          Instr.fcmp Instr.Ge c x y;
          Instr.fneg z x;
          Instr.fabs z x;
          Instr.itof z a;
          Instr.ftoi c x;
          Instr.copy b a;
          Instr.load c a;
          Instr.loadx c a b;
          Instr.loadi c a 1;
          Instr.store ~value:c ~addr:a;
          Instr.storex ~value:z ~base:a ~idx:b;
          Instr.storei ~value:c ~base:a ~off:2;
          Instr.spill c 0;
          Instr.reload c 0;
          Instr.print_ c;
          Instr.nop;
        ]
      ~term:(Instr.cbr a "left" "right") ()
  in
  let b1 = Block.make ~id:1 ~label:"left" ~body:[] ~term:(Instr.jmp "join") () in
  let b2 =
    Block.make ~id:2 ~label:"right" ~body:[] ~term:(Instr.jmp "join") ()
  in
  let b3 =
    Block.make ~id:3 ~label:"join"
      ~body:[ Instr.copy c a ]
      ~term:(Instr.ret (Some c)) ()
  in
  Cfg.make ~name:"every_opcode" ~symbols:[ sym; ro ] [ b0; b1; b2; b3 ]

let test_every_opcode () = check_roundtrip "every_opcode" (every_opcode_cfg ())

let test_empty_blocks () =
  (* Blocks whose body is empty, a cbr with equal arms, and a bare ret. *)
  let a = ri 1 in
  let b0 =
    Block.make ~id:0 ~label:"entry" ~body:[ Instr.ldi a 1 ]
      ~term:(Instr.cbr a "mid" "mid") ()
  in
  let b1 = Block.make ~id:1 ~label:"mid" ~body:[] ~term:(Instr.jmp "out") () in
  let b2 = Block.make ~id:2 ~label:"out" ~body:[] ~term:(Instr.ret None) () in
  check_roundtrip "empty_blocks" (Cfg.make ~name:"empty_blocks" [ b0; b1; b2 ])

let test_float_immediates () =
  let x = rf 1 in
  let specials =
    [ 0.0; -0.0; Float.nan; Float.infinity; Float.neg_infinity; 1e308; 2.5 ]
  in
  let body = List.map (Instr.lfi x) specials @ [ Instr.print_ x ] in
  let b0 = Block.make ~id:0 ~label:"entry" ~body ~term:(Instr.ret None) () in
  let cfg = Cfg.make ~name:"floats" [ b0 ] in
  check_roundtrip "float_immediates" cfg;
  (* Interning must not identify distinct bit patterns (-0.0 vs 0.0) and
     must identify repeated ones. *)
  let f = Flat.of_routine cfg in
  if Array.length f.Flat.floats <> List.length specials then
    Alcotest.failf "float pool has %d entries, expected %d"
      (Array.length f.Flat.floats) (List.length specials)

let test_supply_preserved () =
  let cfg = every_opcode_cfg () in
  ignore (Cfg.fresh_reg cfg Reg.Int);
  ignore (Cfg.fresh_reg cfg Reg.Float);
  let before = Reg.Supply.last cfg.Cfg.supply in
  let back = roundtrip cfg in
  Alcotest.(check int) "supply watermark" before
    (Reg.Supply.last back.Cfg.supply)

let test_edges_match () =
  let cfg = every_opcode_cfg () in
  let f = Flat.of_routine cfg in
  for b = 0 to Cfg.n_blocks cfg - 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "succs of %d" b)
      (Cfg.succs cfg b) (Flat.succs_list f b);
    Alcotest.(check (list int))
      (Printf.sprintf "preds of %d" b)
      (Cfg.preds cfg b) (Flat.preds_list f b)
  done

let test_splice_identity () =
  (* Copying every slot through a Splice builder must reproduce the
     arena exactly. *)
  let cfg = every_opcode_cfg () in
  let f = Flat.of_routine cfg in
  let b = Flat.Splice.create f in
  for blk = 0 to Flat.n_blocks f - 1 do
    for slot = Flat.block_first f blk to Flat.block_term f blk do
      Flat.Splice.emit_slot b slot
    done;
    Flat.Splice.close_block b
  done;
  let f' = Flat.Splice.finish b ~supply_last:f.Flat.supply_last in
  if not (Cfg.structural_equal (Flat.to_routine f') cfg) then
    Alcotest.fail "splice identity: decoded routine differs"

let test_rejects_ssa () =
  (* A diamond with a redefinition on each arm, so construction has to
     place a φ at the join. *)
  let a = ri 1 in
  let b0 =
    Block.make ~id:0 ~label:"entry" ~body:[ Instr.ldi a 0 ]
      ~term:(Instr.cbr a "l" "r") ()
  in
  let b1 =
    Block.make ~id:1 ~label:"l" ~body:[ Instr.ldi a 1 ]
      ~term:(Instr.jmp "j") ()
  in
  let b2 =
    Block.make ~id:2 ~label:"r" ~body:[ Instr.ldi a 2 ]
      ~term:(Instr.jmp "j") ()
  in
  let b3 = Block.make ~id:3 ~label:"j" ~body:[] ~term:(Instr.ret (Some a)) () in
  let cfg = Ssa.Construct.run (Cfg.make ~name:"diamond" [ b0; b1; b2; b3 ]) in
  if not (Cfg.in_ssa cfg) then Alcotest.fail "expected a φ at the join";
  match Flat.of_routine cfg with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_routine accepted an SSA routine"

(* --- Instr.equal / Instr.hash ---------------------------------------- *)

let test_instr_equal () =
  let a = ri 1 and b = ri 2 in
  let x = rf 3 in
  let checks =
    [
      (Instr.ldi a 4, Instr.ldi a 4, true);
      (Instr.ldi a 4, Instr.ldi a 5, false);
      (Instr.ldi a 4, Instr.ldi b 4, false);
      (Instr.ldi a 4, Instr.addi a a 4, false);
      (Instr.lfi x Float.nan, Instr.lfi x Float.nan, true);
      (Instr.lfi x 0.0, Instr.lfi x (-0.0), true);
      (* Float.equal semantics *)
      (Instr.lfi x 1.0, Instr.lfi x 2.0, false);
      (Instr.laddr a "s", Instr.laddr a "s", true);
      (Instr.laddr a "s", Instr.laddr a "t", false);
      (Instr.laddr a ~off:1 "s", Instr.laddr a ~off:2 "s", false);
      (Instr.cmp Instr.Lt a a b, Instr.cmp Instr.Lt a a b, true);
      (Instr.cmp Instr.Lt a a b, Instr.cmp Instr.Le a a b, false);
      (Instr.add a a b, Instr.add a a b, true);
      (Instr.add a a b, Instr.add a b a, false);
      (Instr.jmp "l", Instr.jmp "l", true);
      (Instr.jmp "l", Instr.jmp "m", false);
      (Instr.cbr a "l" "m", Instr.cbr a "l" "m", true);
      (Instr.cbr a "l" "m", Instr.cbr a "m" "l", false);
      (Instr.ret None, Instr.ret None, true);
      (Instr.ret None, Instr.ret (Some a), false);
      (Instr.spill a 1, Instr.spill a 1, true);
      (Instr.spill a 1, Instr.spill a 2, false);
    ]
  in
  List.iteri
    (fun k (i, j, expect) ->
      if Instr.equal i j <> expect then
        Alcotest.failf "equal case %d (%s vs %s): expected %b" k
          (Instr.to_string i) (Instr.to_string j) expect;
      if expect && Instr.hash i <> Instr.hash j then
        Alcotest.failf "hash case %d: equal instructions hash differently" k)
    checks

let test_hash_spreads () =
  (* Not a correctness requirement, but catches a degenerate hash. *)
  let a = ri 1 in
  let hs =
    List.init 64 (fun n -> Instr.hash (Instr.ldi a n))
    |> List.sort_uniq Int.compare
  in
  if List.length hs < 32 then Alcotest.fail "Instr.hash collapses immediates"

(* --- QCheck round-trip over generated routines ----------------------- *)

let gen_configs =
  [
    ("default", Fuzz.Gen.default);
    ("high_pressure", Fuzz.Gen.high_pressure);
    ( "deep",
      { Fuzz.Gen.default with Fuzz.Gen.max_depth = 4; max_stmts = 24 } );
    ( "mem_heavy",
      { Fuzz.Gen.high_pressure with Fuzz.Gen.mem_weight = 12 } );
    ( "nk_heavy",
      { Fuzz.Gen.default with Fuzz.Gen.never_killed_weight = 12 } );
  ]

let roundtrip_prop (name, config) =
  QCheck.Test.make ~count:100
    ~name:(Printf.sprintf "flat round-trip (%s)" name)
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let cfg = Fuzz.Gen.generate ~config seed in
      let back = roundtrip cfg in
      if not (Cfg.structural_equal back cfg) then
        QCheck.Test.fail_reportf "seed %d: round-trip differs" seed
      else true)

let liveness_flat_prop (name, config) =
  QCheck.Test.make ~count:40
    ~name:(Printf.sprintf "flat liveness ≡ structured (%s)" name)
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let cfg = Fuzz.Gen.generate ~config seed in
      let fl = Flat.of_routine cfg in
      let dense = Dataflow.Liveness.compute cfg in
      let flat = Dataflow.Liveness.compute_flat fl in
      let bound = Dataflow.Liveness.Boundary.compute fl in
      for b = 0 to Cfg.n_blocks cfg - 1 do
        let open Dataflow.Liveness in
        if
          not
            (Dataflow.Bitset.equal dense.live_in.(b) flat.live_in.(b)
            && Dataflow.Bitset.equal dense.live_out.(b) flat.live_out.(b)
            && Dataflow.Bitset.equal dense.ue.(b) flat.ue.(b)
            && Dataflow.Bitset.equal dense.kill.(b) flat.kill.(b))
        then
          QCheck.Test.fail_reportf "seed %d: flat sets differ at block %d" seed
            b;
        (* Boundary sets, reindexed through [uindex], must equal the
           dense boundary sets exactly. *)
        let to_regs uindex set =
          Dataflow.Bitset.fold
            (fun i acc -> Dataflow.Reg_index.reg uindex i :: acc)
            set []
          |> List.rev
        in
        let eq_regs a b = List.equal Reg.equal a b in
        if
          not
            (eq_regs (live_in dense b)
               (to_regs bound.Boundary.uindex bound.Boundary.live_in.(b))
            && eq_regs (live_out dense b)
                 (to_regs bound.Boundary.uindex bound.Boundary.live_out.(b)))
        then
          QCheck.Test.fail_reportf "seed %d: boundary sets differ at block %d"
            seed b
      done;
      true)

(* --- renumber A/B: flat-native pass vs structured must agree exactly - *)

let tag_list tbl =
  Reg.Tbl.fold (fun r t acc -> (r, t) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Reg.compare a b)
  |> List.map (fun (r, t) ->
         Printf.sprintf "%s:%s" (Reg.to_string r) (Remat.Tag.to_string t))

let renumber_ab_check ~what ~mode cfg =
  let cfg = Cfg.split_critical_edges cfg in
  let s = Remat.Renumber.run mode cfg in
  let f = Remat.Renumber.run_flat mode (Flat.of_routine cfg) in
  let fcfg = Flat.to_routine f.Remat.Renumber.fl in
  if not (Cfg.structural_equal fcfg s.Remat.Renumber.cfg) then
    Alcotest.failf "%s: flat renumber differs:@.%s@.vs@.%s" what
      (Cfg.to_string s.Remat.Renumber.cfg)
      (Cfg.to_string fcfg);
  Alcotest.(check int)
    (what ^ ": supply watermark")
    (Reg.Supply.last s.Remat.Renumber.cfg.Cfg.supply)
    (Reg.Supply.last fcfg.Cfg.supply);
  Alcotest.(check int) (what ^ ": n_values") s.Remat.Renumber.n_values
    f.Remat.Renumber.f_n_values;
  Alcotest.(check int)
    (what ^ ": n_live_ranges")
    s.Remat.Renumber.n_live_ranges f.Remat.Renumber.f_n_live_ranges;
  let pair (d, sr) = Printf.sprintf "%s<-%s" (Reg.to_string d) (Reg.to_string sr) in
  Alcotest.(check (list string))
    (what ^ ": split pairs")
    (List.map pair s.Remat.Renumber.split_pairs)
    (List.map pair f.Remat.Renumber.f_split_pairs);
  Alcotest.(check (list string))
    (what ^ ": tags")
    (tag_list s.Remat.Renumber.tags)
    (tag_list f.Remat.Renumber.f_tags)

let renumber_modes =
  [
    Remat.Mode.No_remat;
    Remat.Mode.Chaitin_remat;
    Remat.Mode.Briggs_remat;
    Remat.Mode.Briggs_remat_phi_splits;
  ]

let renumber_ab_prop (name, config) =
  QCheck.Test.make ~count:40
    ~name:(Printf.sprintf "flat renumber ≡ structured (%s)" name)
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let cfg = Fuzz.Gen.generate ~config seed in
      List.iter
        (fun mode ->
          renumber_ab_check
            ~what:
              (Printf.sprintf "seed %d, %s" seed (Remat.Mode.to_string mode))
            ~mode (Cfg.copy cfg))
        renumber_modes;
      true)

(* --- graph A/B: boundary-fed build ≡ dense-fed build ----------------- *)

let graph_fingerprint g =
  let n = Remat.Interference.n_nodes g in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "n=%d e=%d\n" n (Remat.Interference.n_edges g));
  for i = 0 to n - 1 do
    Buffer.add_string buf (Reg.to_string (Remat.Interference.reg g i));
    Buffer.add_char buf ':';
    Buffer.add_string buf
      (string_of_int (Remat.Interference.sig_neighbors g i));
    (* Adjacency is compared in vector order: the boundary-fed build must
       insert the same edges in the same sequence, not just the same
       set. *)
    List.iter
      (fun j -> Buffer.add_string buf (Printf.sprintf " %d" j))
      (Remat.Interference.neighbors g i);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let graph_boundary_prop (name, config) =
  QCheck.Test.make ~count:40
    ~name:(Printf.sprintf "boundary-fed graph ≡ dense-fed (%s)" name)
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let cfg = Fuzz.Gen.generate ~config seed in
      let fl = Flat.of_routine cfg in
      let dense = Dataflow.Liveness.compute_flat fl in
      let bound = Dataflow.Liveness.Boundary.compute fl in
      let regs = Dataflow.Reg_index.of_flat fl in
      let k =
        Remat.Machine.k_for
          (Remat.Machine.make ~name:"tiny" ~k_int:6 ~k_float:4)
      in
      let a = graph_fingerprint (Remat.Interference.build_flat ~k fl dense) in
      let b =
        graph_fingerprint
          (Remat.Interference.build_flat_boundary ~k regs fl bound)
      in
      if not (String.equal a b) then
        QCheck.Test.fail_reportf "seed %d: graphs differ:@.%s@.vs@.%s" seed a b
      else true)

(* --- batched graph build ≡ incremental ------------------------------- *)

(* Same flat routine, same boundary liveness, two construction
   strategies: the pair-buffer radix pipeline must reproduce the
   incremental builder's graph {e including} per-node neighbor vector
   order (the fingerprint prints adjacency in vector order, so any
   reordering — not just a set difference — fails). *)
let batched_vs_incremental cfg =
  let fl = Flat.of_routine cfg in
  let bound = Dataflow.Liveness.Boundary.compute fl in
  let regs = Dataflow.Reg_index.of_flat fl in
  let k =
    Remat.Machine.k_for (Remat.Machine.make ~name:"tiny" ~k_int:6 ~k_float:4)
  in
  let a =
    graph_fingerprint
      (Remat.Interference.build_flat_boundary ~batch:false ~k regs fl bound)
  in
  let b =
    graph_fingerprint
      (Remat.Interference.build_flat_boundary ~batch:true ~k regs fl bound)
  in
  (a, b)

let batched_graph_prop (name, config) =
  QCheck.Test.make ~count:40
    ~name:(Printf.sprintf "batched graph ≡ incremental (%s)" name)
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let cfg = Fuzz.Gen.generate ~config seed in
      let a, b = batched_vs_incremental cfg in
      if not (String.equal a b) then
        QCheck.Test.fail_reportf "seed %d: batched graph differs:@.%s@.vs@.%s"
          seed a b
      else true)

let test_batched_over_limit () =
  (* Cross [dense_node_limit], so both strategies run on the sparse edge
     representations (Hash_set incremental vs Csr batched) rather than
     the shared dense bit matrix.  A window-8 dependence chain keeps the
     edge count linear in n, so the incremental reference stays fast. *)
  let n = Remat.Interference.dense_node_limit + 300 in
  let r i = ri (i + 1) in
  let body = ref [ Instr.ldi (r 0) 1 ] in
  for i = 1 to n - 1 do
    body := Instr.add (r i) (r (i - 1)) (r (max 0 (i - 8))) :: !body
  done;
  let b0 =
    Block.make ~id:0 ~label:"entry" ~body:(List.rev !body)
      ~term:(Instr.ret (Some (r (n - 1)))) ()
  in
  let cfg = Cfg.make ~name:"big" [ b0 ] in
  let a, b = batched_vs_incremental cfg in
  if not (String.equal a b) then
    Alcotest.fail "batched graph differs beyond dense_node_limit"

(* --- allocator A/B: flat vs structured must be byte-identical -------- *)

let alloc_fingerprint ~use_flat ~mode ~machine cfg =
  let res = Remat.Allocator.allocate ~mode ~machine ~use_flat cfg in
  let open Remat.Allocator in
  Printf.sprintf "%s\nrounds=%d mem=%d remat=%d slots=%d coalesced=%d"
    (Cfg.to_string res.cfg) res.rounds res.spilled_memory res.spilled_remat
    res.spill_slots res.coalesced_copies

let ab_check ~what ~mode ~machine cfg =
  let a = alloc_fingerprint ~use_flat:false ~mode ~machine cfg in
  let b = alloc_fingerprint ~use_flat:true ~mode ~machine cfg in
  if not (String.equal a b) then
    Alcotest.failf "%s: flat allocation differs from structured:@.%s@.vs@.%s"
      what a b

let ab_machines =
  [
    Remat.Machine.make ~name:"tiny" ~k_int:6 ~k_float:4;
    Remat.Machine.standard;
  ]

let test_allocator_ab () =
  List.iter
    (fun mode ->
      List.iter
        (fun machine ->
          List.iter
            (fun seed ->
              let cfg = Fuzz.Gen.generate ~config:Fuzz.Gen.high_pressure seed in
              ab_check
                ~what:
                  (Printf.sprintf "seed %d, %s, %s" seed
                     (Remat.Mode.to_string mode)
                     machine.Remat.Machine.name)
                ~mode ~machine cfg)
            [ 11; 42; 1234 ])
        ab_machines)
    [ Remat.Mode.Briggs_remat; Remat.Mode.Chaitin_remat; Remat.Mode.No_remat ]

let allocator_ab_prop (name, config) =
  QCheck.Test.make ~count:25
    ~name:(Printf.sprintf "flat allocation ≡ structured (%s)" name)
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let cfg = Fuzz.Gen.generate ~config seed in
      let machine = Remat.Machine.make ~name:"tiny" ~k_int:6 ~k_float:4 in
      ab_check
        ~what:(Printf.sprintf "seed %d" seed)
        ~mode:Remat.Mode.Briggs_remat ~machine cfg;
      true)

(* End-to-end: forcing the batched builder (every round, even under the
   dense threshold where the default is incremental) must leave the
   final allocation byte-identical — graph construction order feeds
   simplify/select tie-breaks, so this exercises the full pipeline's
   sensitivity to neighbor order. *)
let batched_alloc_fingerprint ~batch ~mode ~machine cfg =
  let res = Remat.Allocator.allocate ~mode ~machine ~batch_build:batch cfg in
  let open Remat.Allocator in
  Printf.sprintf "%s\nrounds=%d mem=%d remat=%d slots=%d coalesced=%d"
    (Cfg.to_string res.cfg) res.rounds res.spilled_memory res.spilled_remat
    res.spill_slots res.coalesced_copies

let batched_alloc_prop (name, config) =
  QCheck.Test.make ~count:25
    ~name:(Printf.sprintf "batched allocation ≡ incremental (%s)" name)
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let cfg = Fuzz.Gen.generate ~config seed in
      let machine = Remat.Machine.make ~name:"tiny" ~k_int:6 ~k_float:4 in
      let mode = Remat.Mode.Briggs_remat in
      let a =
        batched_alloc_fingerprint ~batch:false ~mode ~machine (Cfg.copy cfg)
      in
      let b = batched_alloc_fingerprint ~batch:true ~mode ~machine cfg in
      if not (String.equal a b) then
        QCheck.Test.fail_reportf
          "seed %d: batched allocation differs:@.%s@.vs@.%s" seed a b
      else true)

let qcheck_cases =
  List.map
    (fun c -> QCheck_alcotest.to_alcotest (roundtrip_prop c))
    gen_configs
  @ List.map
      (fun c -> QCheck_alcotest.to_alcotest (liveness_flat_prop c))
      gen_configs
  @ List.map
      (fun c -> QCheck_alcotest.to_alcotest (renumber_ab_prop c))
      gen_configs
  @ List.map
      (fun c -> QCheck_alcotest.to_alcotest (graph_boundary_prop c))
      gen_configs
  @ List.map
      (fun c -> QCheck_alcotest.to_alcotest (batched_graph_prop c))
      gen_configs
  @ List.map
      (fun c -> QCheck_alcotest.to_alcotest (allocator_ab_prop c))
      gen_configs
  @ List.map
      (fun c -> QCheck_alcotest.to_alcotest (batched_alloc_prop c))
      gen_configs

let () =
  Alcotest.run "flat"
    [
      ( "directed",
        [
          Alcotest.test_case "every opcode round-trips" `Quick
            test_every_opcode;
          Alcotest.test_case "empty blocks round-trip" `Quick test_empty_blocks;
          Alcotest.test_case "special float immediates" `Quick
            test_float_immediates;
          Alcotest.test_case "supply watermark preserved" `Quick
            test_supply_preserved;
          Alcotest.test_case "CSR edges match Cfg edges" `Quick
            test_edges_match;
          Alcotest.test_case "splice identity" `Quick test_splice_identity;
          Alcotest.test_case "of_routine rejects SSA" `Quick test_rejects_ssa;
          Alcotest.test_case "batched build beyond dense_node_limit" `Quick
            test_batched_over_limit;
        ] );
      ( "instr-equal",
        [
          Alcotest.test_case "directed equal/hash pairs" `Quick
            test_instr_equal;
          Alcotest.test_case "hash spreads immediates" `Quick
            test_hash_spreads;
        ] );
      ( "allocator-ab",
        [
          Alcotest.test_case "flat vs structured allocation" `Quick
            test_allocator_ab;
        ] );
      ("roundtrip", qcheck_cases);
    ]
