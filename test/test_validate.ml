(* Directed coverage of every Validate.error shape: one deliberately
   malformed routine per invariant, asserting that the reported block
   label and instruction index pinpoint the planted fault.  Constructor
   checks (Instr.make, Block.make, Cfg.make) normally make these states
   unrepresentable, so each test either builds the bad instruction as a
   raw record or mutates a valid routine in place — exactly what a buggy
   allocator pass would do, and the reason Validate re-checks what the
   constructors already enforced. *)

module I = Iloc.Instr
module R = Iloc.Reg
module V = Iloc.Validate

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check
let ri n = R.make n R.Int
let rf n = R.make n R.Float

let blk id label ?(phis = []) body term =
  Iloc.Block.make ~id ~label ~phis ~body ~term ()

let cfg ?symbols blocks = Iloc.Cfg.make ~name:"bad" ?symbols blocks

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The routine must produce exactly one error, attached to the expected
   block and index and mentioning [what]. *)
let expect ?ssa ~block ~index ~what c =
  match V.routine ?ssa c with
  | Ok () -> Alcotest.failf "expected %S, but the routine validated" what
  | Error [ e ] ->
      check Alcotest.(option string) "offending block" block e.V.block;
      check Alcotest.(option int) "offending index" index e.V.index;
      check Alcotest.bool
        (Printf.sprintf "%S appears in %S" what e.V.what)
        true
        (contains e.V.what what)
  | Error es ->
      Alcotest.failf "expected exactly one error, got %d: %s" (List.length es)
        (String.concat "; " (List.map V.error_to_string es))

(* --- instruction-level invariants (re-run Instr.make) --- *)

let instr_tests =
  [
    tc "operand arity" (fun () ->
        (* add with one source instead of two. *)
        let bad = { I.op = I.Add; dst = Some (ri 2); srcs = [| ri 0 |] } in
        let c =
          cfg [ blk 0 "entry" [ I.ldi (ri 0) 1; bad ] (I.ret None) ]
        in
        expect ~block:(Some "entry") ~index:(Some 1) ~what:"source arity" c);
    tc "ret arity" (fun () ->
        let bad = { I.op = I.Ret; dst = None; srcs = [| ri 0; ri 1 |] } in
        let c =
          cfg [ blk 0 "entry" [ I.ldi (ri 0) 1; I.ldi (ri 1) 2 ] bad ]
        in
        expect ~block:(Some "entry") ~index:(Some 2)
          ~what:"ret takes at most one source" c);
    tc "source register class" (fun () ->
        (* integer add fed a float source. *)
        let bad = { I.op = I.Add; dst = Some (ri 2); srcs = [| ri 0; rf 1 |] } in
        let c =
          cfg
            [
              blk 0 "entry"
                [ I.ldi (ri 0) 1; I.lfi (rf 1) 2.0; bad ]
                (I.ret None);
            ]
        in
        expect ~block:(Some "entry") ~index:(Some 2)
          ~what:"source register class" c);
    tc "destination register class" (fun () ->
        let bad = { I.op = I.Add; dst = Some (rf 2); srcs = [| ri 0; ri 1 |] } in
        let c =
          cfg
            [
              blk 0 "entry"
                [ I.ldi (ri 0) 1; I.ldi (ri 1) 2; bad ]
                (I.ret None);
            ]
        in
        expect ~block:(Some "entry") ~index:(Some 2)
          ~what:"destination register class" c);
    tc "cross-class copy" (fun () ->
        let bad = { I.op = I.Copy; dst = Some (rf 1); srcs = [| ri 0 |] } in
        let c = cfg [ blk 0 "entry" [ I.ldi (ri 0) 1; bad ] (I.ret None) ] in
        expect ~block:(Some "entry") ~index:(Some 1)
          ~what:"copy must stay within a register class" c);
    tc "terminator in block body" (fun () ->
        let c = cfg [ blk 0 "entry" [ I.ldi (ri 0) 1 ] (I.ret None) ] in
        (* Block.make refuses this, so plant it by mutation. *)
        let b = Iloc.Cfg.block c 0 in
        b.Iloc.Block.body <- b.Iloc.Block.body @ [ I.jmp "entry" ];
        expect ~block:(Some "entry") ~index:(Some 1)
          ~what:"terminator in block body" c);
  ]

(* --- symbol references --- *)

let symbol_tests =
  [
    tc "unknown symbol" (fun () ->
        let c = cfg [ blk 0 "entry" [ I.laddr (ri 0) "ghost" ] (I.ret None) ] in
        expect ~block:(Some "entry") ~index:(Some 0)
          ~what:"unknown symbol @ghost" c);
    tc "ldro from a writable symbol" (fun () ->
        let buf = Iloc.Symbol.make ~readonly:false "buf" 4 in
        let c =
          cfg ~symbols:[ buf ]
            [ blk 0 "entry" [ I.ldro (ri 0) "buf" 0 ] (I.ret None) ]
        in
        expect ~block:(Some "entry") ~index:(Some 0)
          ~what:"ldro from writable symbol @buf" c);
    tc "ldro offset out of bounds" (fun () ->
        let tab = Iloc.Symbol.make ~readonly:true "tab" 4 in
        let c =
          cfg ~symbols:[ tab ]
            [ blk 0 "entry" [ I.ldro (ri 0) "tab" 9 ] (I.ret None) ]
        in
        expect ~block:(Some "entry") ~index:(Some 0)
          ~what:"ldro offset 9 out of bounds for @tab" c);
  ]

(* --- definite assignment --- *)

let flow_tests =
  [
    tc "use of a possibly-undefined register" (fun () ->
        (* r1 is assigned on the path through "def" but not on the direct
           edge entry -> use, so the join only may-defines it. *)
        let c =
          cfg
            [
              blk 0 "entry" [ I.ldi (ri 0) 1 ] (I.cbr (ri 0) "def" "use");
              blk 1 "def" [ I.ldi (ri 1) 5 ] (I.jmp "use");
              blk 2 "use" [ I.print_ (ri 1) ] (I.ret None);
            ]
        in
        expect ~block:(Some "use") ~index:(Some 0)
          ~what:"use of possibly-undefined r1" c);
    tc "unreachable blocks are not reported" (fun () ->
        (* Same undefined use, but in a block nothing jumps to: no error. *)
        let c =
          cfg
            [
              blk 0 "entry" [ I.ldi (ri 0) 1 ] (I.ret None);
              blk 1 "dead" [ I.print_ (ri 9) ] (I.ret None);
            ]
        in
        check Alcotest.bool "validates" true (V.routine c = Ok ()));
  ]

(* --- SSA form --- *)

let phi r args = Iloc.Phi.make r args

let ssa_tests =
  [
    tc "phi outside SSA form" (fun () ->
        let c =
          cfg
            [
              blk 0 "entry" [ I.ldi (ri 0) 1 ] (I.jmp "m");
              blk 1 "m"
                ~phis:[ phi (ri 1) [ (0, ri 0) ] ]
                [ I.print_ (ri 1) ] (I.ret None);
            ]
        in
        (* Without ~ssa:true the mere presence of a phi is the fault. *)
        expect ~block:(Some "m") ~index:None ~what:"phi outside SSA form" c);
    tc "register defined more than once" (fun () ->
        let c =
          cfg
            [
              blk 0 "entry"
                [ I.ldi (ri 0) 1; I.ldi (ri 0) 2; I.print_ (ri 0) ]
                (I.ret None);
            ]
        in
        expect ~ssa:true ~block:(Some "entry") ~index:None
          ~what:"r0 defined more than once" c);
    tc "phi argument list does not match predecessors" (fun () ->
        (* "loop" has two predecessors (entry and itself) but the phi only
           carries an argument for the entry edge. *)
        let c =
          cfg
            [
              blk 0 "entry" [ I.ldi (ri 0) 1 ] (I.jmp "loop");
              blk 1 "loop"
                ~phis:[ phi (ri 1) [ (0, ri 0) ] ]
                [] (I.cbr (ri 1) "loop" "exit");
              blk 2 "exit" [] (I.ret None);
            ]
        in
        expect ~ssa:true ~block:(Some "loop") ~index:None
          ~what:"phi for r1 does not match predecessors" c);
    tc "phi argument undefined on its edge" (fun () ->
        let c =
          cfg
            [
              blk 0 "entry" [ I.ldi (ri 0) 1 ] (I.jmp "m");
              blk 1 "m"
                ~phis:[ phi (ri 2) [ (0, ri 9) ] ]
                [ I.print_ (ri 2) ] (I.ret None);
            ]
        in
        expect ~ssa:true ~block:(Some "m") ~index:None
          ~what:"phi argument r9 not defined on edge from B0" c);
  ]

(* --- routine-level label resolution --- *)

let routine_tests =
  [
    tc "dangling branch target" (fun () ->
        let c = cfg [ blk 0 "entry" [ I.ldi (ri 0) 1 ] (I.ret None) ] in
        (Iloc.Cfg.block c 0).Iloc.Block.term <- I.jmp "nowhere";
        expect ~block:None ~index:None ~what:"dangling label nowhere" c);
    tc "duplicate block label" (fun () ->
        let c =
          cfg
            [
              blk 0 "entry" [ I.ldi (ri 0) 1 ] (I.jmp "next");
              blk 1 "next" [] (I.ret None);
            ]
        in
        (* Rebuild block 1 under the entry's label; Cfg.make would refuse
           this, so overwrite the block array directly. *)
        c.Iloc.Cfg.blocks.(1) <- blk 1 "entry" [] (I.ret None);
        match V.routine c with
        | Ok () -> Alcotest.fail "duplicate label accepted"
        | Error (e :: _) ->
            check Alcotest.(option string) "routine-level" None e.V.block;
            check Alcotest.bool "names the label" true
              (contains e.V.what "duplicate label entry")
        | Error [] -> assert false);
  ]

let () =
  Alcotest.run "validate"
    [
      ("instr", instr_tests);
      ("symbols", symbol_tests);
      ("flow", flow_tests);
      ("ssa", ssa_tests);
      ("routine", routine_tests);
    ]
