(* Unit tests for the ILOC IR: registers, instructions, parsing/printing,
   CFG construction, critical edges, and validation. *)

module Reg = Iloc.Reg
module Instr = Iloc.Instr
module Cfg = Iloc.Cfg
module Builder = Iloc.Builder

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* --- registers --- *)

let reg_tests =
  [
    tc "make/id/cls" (fun () ->
        let r = Reg.make 5 Reg.Int in
        check Alcotest.int "id" 5 (Reg.id r);
        check Alcotest.bool "int" true (Reg.is_int r);
        check Alcotest.string "print" "r5" (Reg.to_string r));
    tc "classes distinguish equal ids" (fun () ->
        let r = Reg.make 3 Reg.Int and f = Reg.make 3 Reg.Float in
        check Alcotest.bool "equal" false (Reg.equal r f);
        check Alcotest.bool "compare" true (Reg.compare r f <> 0);
        check Alcotest.string "float print" "f3" (Reg.to_string f));
    tc "negative id rejected" (fun () ->
        Alcotest.check_raises "neg"
          (Invalid_argument "Reg.make: negative id") (fun () ->
            ignore (Reg.make (-1) Reg.Int)));
    tc "supply is fresh" (fun () ->
        let s = Reg.Supply.create ~start:10 () in
        let a = Reg.Supply.fresh s Reg.Int in
        let b = Reg.Supply.fresh s Reg.Float in
        check Alcotest.int "a" 11 (Reg.id a);
        check Alcotest.int "b" 12 (Reg.id b);
        check Alcotest.int "last" 12 (Reg.Supply.last s));
  ]

(* --- instructions --- *)

let r0 = Reg.make 0 Reg.Int
let r1 = Reg.make 1 Reg.Int
let r2 = Reg.make 2 Reg.Int
let f0 = Reg.make 10 Reg.Float
let f1 = Reg.make 11 Reg.Float

let instr_tests =
  [
    tc "defs and uses" (fun () ->
        let i = Instr.add r2 r0 r1 in
        check (Alcotest.list Alcotest.string) "defs" [ "r2" ]
          (List.map Reg.to_string (Instr.defs i));
        check (Alcotest.list Alcotest.string) "uses" [ "r0"; "r1" ]
          (List.map Reg.to_string (Instr.uses i)));
    tc "class discipline enforced" (fun () ->
        (try
           ignore (Instr.add f0 r0 r1);
           Alcotest.fail "float dst accepted for add"
         with Invalid_argument _ -> ());
        (try
           ignore (Instr.fadd f0 f1 r0);
           Alcotest.fail "int src accepted for fadd"
         with Invalid_argument _ -> ());
        try
          ignore (Instr.copy r0 f0);
          Alcotest.fail "cross-class copy accepted"
        with Invalid_argument _ -> ());
    tc "fcmp produces an integer" (fun () ->
        let i = Instr.fcmp Instr.Lt r0 f0 f1 in
        check Alcotest.bool "dst int" true (Reg.is_int (Option.get i.Instr.dst)));
    tc "never-killed classification" (fun () ->
        check Alcotest.bool "ldi" true (Instr.never_killed (Instr.Ldi 4));
        check Alcotest.bool "lfi" true (Instr.never_killed (Instr.Lfi 1.0));
        check Alcotest.bool "laddr" true (Instr.never_killed (Instr.Laddr ("x", 0)));
        check Alcotest.bool "lfp" true (Instr.never_killed (Instr.Lfp 8));
        check Alcotest.bool "ldro" true (Instr.never_killed (Instr.Ldro ("x", 0)));
        check Alcotest.bool "add" false (Instr.never_killed Instr.Add);
        check Alcotest.bool "copy" false (Instr.never_killed Instr.Copy);
        check Alcotest.bool "load" false (Instr.never_killed Instr.Load));
    tc "remat equality is operand-by-operand" (fun () ->
        check Alcotest.bool "same ldi" true
          (Instr.remat_equal (Instr.Ldi 5) (Instr.Ldi 5));
        check Alcotest.bool "diff ldi" false
          (Instr.remat_equal (Instr.Ldi 5) (Instr.Ldi 6));
        check Alcotest.bool "ldi vs laddr" false
          (Instr.remat_equal (Instr.Ldi 5) (Instr.Laddr ("a", 0)));
        check Alcotest.bool "ldro offsets" false
          (Instr.remat_equal (Instr.Ldro ("a", 0)) (Instr.Ldro ("a", 1))));
    tc "categories" (fun () ->
        let cat op = Instr.category_to_string (Instr.category op) in
        check Alcotest.string "load" "load" (cat Instr.Load);
        check Alcotest.string "reload" "load" (cat (Instr.Reload 0));
        check Alcotest.string "ldro" "load" (cat (Instr.Ldro ("a", 0)));
        check Alcotest.string "spill" "store" (cat (Instr.Spill 0));
        check Alcotest.string "copy" "copy" (cat Instr.Copy);
        check Alcotest.string "ldi" "ldi" (cat (Instr.Ldi 1));
        check Alcotest.string "laddr" "ldi" (cat (Instr.Laddr ("a", 0)));
        check Alcotest.string "lfp" "addi" (cat (Instr.Lfp 0));
        check Alcotest.string "addi" "addi" (cat (Instr.Addi 1));
        check Alcotest.string "mul" "other" (cat Instr.Mul));
    tc "cycle costs" (fun () ->
        check Alcotest.int "load" 2 (Instr.cycles Instr.Load);
        check Alcotest.int "store" 2 (Instr.cycles Instr.Store);
        check Alcotest.int "add" 1 (Instr.cycles Instr.Add);
        check Alcotest.int "ldi" 1 (Instr.cycles (Instr.Ldi 0)));
    tc "terminators" (fun () ->
        check Alcotest.bool "jmp" true (Instr.is_terminator (Instr.jmp "l"));
        check Alcotest.bool "cbr" true
          (Instr.is_terminator (Instr.cbr r0 "a" "b"));
        check Alcotest.bool "ret" true (Instr.is_terminator (Instr.ret None));
        check Alcotest.bool "add" false (Instr.is_terminator (Instr.add r2 r0 r1)));
    tc "map_regs hits every operand" (fun () ->
        let subst r = if Reg.equal r r0 then r2 else r in
        let i = Instr.map_regs subst (Instr.add r1 r0 r0) in
        check (Alcotest.list Alcotest.string) "uses" [ "r2"; "r2" ]
          (List.map Reg.to_string (Instr.uses i)));
    tc "ret arity" (fun () ->
        try
          ignore (Instr.make Instr.Ret [ r0; r1 ]);
          Alcotest.fail "two-operand ret accepted"
        with Invalid_argument _ -> ());
  ]

(* --- parser / printer --- *)

let parse_instr_tests =
  let roundtrip s =
    let i = Iloc.Parser.instr s in
    check Alcotest.string "roundtrip" s (Instr.to_string i)
  in
  [
    tc "instruction roundtrips" (fun () ->
        List.iter roundtrip
          [
            "r1 <- ldi 42";
            "r1 <- ldi -7";
            "f2 <- lfi 0x1.4p+1";
            "r3 <- laddr @table";
            "r3 <- lfp 16";
            "r4 <- ldro @k 3";
            "r5 <- add r1 r2";
            "r5 <- cmp_le r1 r2";
            "r5 <- addi r1 -3";
            "f5 <- fadd f1 f2";
            "r9 <- fcmp_ge f1 f2";
            "f5 <- itof r1";
            "r5 <- ftoi f1";
            "r5 <- copy r1";
            "f5 <- copy f1";
            "f6 <- load r1";
            "r6 <- loadx r1 r2";
            "r6 <- loadi r1 4";
            "store r1 -> r2";
            "storex f1 -> r2 r3";
            "storei r1 -> r2 8";
            "spill r1 -> [3]";
            "r1 <- reload [3]";
            "jmp exit";
            "cbr r1 a b";
            "ret";
            "ret r1";
            "print f1";
            "nop";
          ]);
    tc "comments and whitespace" (fun () ->
        let i = Iloc.Parser.instr "  r1   <- ldi 5 ; trailing comment" in
        check Alcotest.string "parsed" "r1 <- ldi 5" (Instr.to_string i));
    tc "bad instruction rejected" (fun () ->
        List.iter
          (fun s ->
            try
              ignore (Iloc.Parser.instr s);
              Alcotest.failf "accepted %S" s
            with Iloc.Parser.Error _ -> ())
          [
            "r1 <- frob r2";
            "r1 <- add r2";
            "f1 <- add r1 r2";
            "r1 <- copy f2";
            "store r1 r2";
            "r1 <-";
            "cbr r1 onlyone";
          ]);
  ]

let sample_routine =
  {|
routine sample
data const k[4] = { 3 1 4 1 }
data buf[2]
entry:
  r1 <- ldro @k 0
  r2 <- ldi 10
  r3 <- cmp_lt r1 r2
  cbr r3 yes no
yes:
  r4 <- laddr @buf
  storei r1 -> r4 0
  jmp done
no:
  r4 <- laddr @buf
  storei r2 -> r4 0
  jmp done
done:
  ret
|}

let routine_tests =
  [
    tc "routine parses" (fun () ->
        let cfg = Iloc.Parser.routine sample_routine in
        check Alcotest.string "name" "sample" cfg.Cfg.name;
        check Alcotest.int "blocks" 4 (Cfg.n_blocks cfg);
        check Alcotest.int "symbols" 2 (List.length cfg.Cfg.symbols));
    tc "routine roundtrips through printer" (fun () ->
        let cfg = Iloc.Parser.routine sample_routine in
        let text = Iloc.Printer.routine_to_string cfg in
        let cfg2 = Iloc.Parser.routine text in
        check Alcotest.string "same text" text
          (Iloc.Printer.routine_to_string cfg2));
    tc "edges" (fun () ->
        let cfg = Iloc.Parser.routine sample_routine in
        check (Alcotest.list Alcotest.int) "entry succs" [ 1; 2 ]
          (List.sort Int.compare (Cfg.succs cfg 0));
        check (Alcotest.list Alcotest.int) "done preds" [ 1; 2 ]
          (List.sort Int.compare (Cfg.preds cfg 3)));
    tc "dangling label rejected" (fun () ->
        try
          ignore (Iloc.Parser.routine "routine x\nentry:\n  jmp nowhere\n");
          Alcotest.fail "dangling label accepted"
        with Iloc.Parser.Error _ -> ());
    tc "duplicate label rejected" (fun () ->
        try
          ignore
            (Iloc.Parser.routine "routine x\na:\n  jmp a\na:\n  ret\n");
          Alcotest.fail "duplicate label accepted"
        with Iloc.Parser.Error _ -> ());
    tc "missing terminator rejected" (fun () ->
        try
          ignore (Iloc.Parser.routine "routine x\nentry:\n  r1 <- ldi 1\n");
          Alcotest.fail "missing terminator accepted"
        with Iloc.Parser.Error _ -> ());
    tc "program parses several routines" (fun () ->
        let src = "routine a\nentry:\n  ret\nroutine b\nentry:\n  ret\n" in
        check Alcotest.int "two" 2 (List.length (Iloc.Parser.program src)));
  ]

(* --- critical edges --- *)

let critical_edge_tests =
  [
    tc "critical edge split" (fun () ->
        (* entry -cbr-> (a, join); a -> join: the entry->join edge is
           critical (entry has 2 succs, join has 2 preds). *)
        let src =
          "routine x\n\
           entry:\n\
          \  r1 <- ldi 1\n\
          \  cbr r1 a join\n\
           a:\n\
          \  jmp join\n\
           join:\n\
          \  ret\n"
        in
        let cfg = Iloc.Parser.routine src in
        let cfg' = Cfg.split_critical_edges cfg in
        check Alcotest.int "one block added" 4 (Cfg.n_blocks cfg');
        (* After splitting, no edge is critical. *)
        Cfg.iter_blocks
          (fun b ->
            let ns = Cfg.succs cfg' b.Iloc.Block.id in
            if List.length ns > 1 then
              List.iter
                (fun s ->
                  check Alcotest.int
                    (Printf.sprintf "B%d multi-pred" s)
                    1
                    (List.length (Cfg.preds cfg' s)))
                ns)
          cfg');
    tc "degenerate cbr normalized" (fun () ->
        let src =
          "routine x\nentry:\n  r1 <- ldi 1\n  cbr r1 out out\nout:\n  ret\n"
        in
        let cfg = Cfg.split_critical_edges (Iloc.Parser.routine src) in
        match (Cfg.block cfg 0).Iloc.Block.term.Instr.op with
        | Instr.Jmp "out" -> ()
        | _ -> Alcotest.fail "cbr not normalized to jmp");
    tc "split preserves behaviour" (fun () ->
        let cfg = Testutil.diamond () in
        let cfg' = Cfg.split_critical_edges cfg in
        Testutil.assert_equiv ~what:"critical-edge split" cfg cfg');
  ]

(* --- validation --- *)

let validate_tests =
  [
    tc "valid routine passes" (fun () ->
        List.iter
          (fun (name, cfg) ->
            match Iloc.Validate.routine cfg with
            | Ok () -> ()
            | Error es ->
                Alcotest.failf "%s: %s" name
                  (String.concat "; "
                     (List.map Iloc.Validate.error_to_string es)))
          (Testutil.all_fixed ()));
    tc "use before def detected" (fun () ->
        let src = "routine x\nentry:\n  r2 <- addi r1 1\n  ret\n" in
        match Iloc.Validate.routine (Iloc.Parser.routine src) with
        | Ok () -> Alcotest.fail "undefined use accepted"
        | Error _ -> ());
    tc "errors carry block label and instruction index" (fun () ->
        let src =
          "routine x\n\
           entry:\n\
          \  jmp more\n\
           more:\n\
          \  r1 <- ldi 1\n\
          \  r2 <- addi r9 1\n\
          \  ret\n"
        in
        match Iloc.Validate.routine (Iloc.Parser.routine src) with
        | Ok () -> Alcotest.fail "undefined use accepted"
        | Error (e :: _) ->
            check Alcotest.(option string) "block" (Some "more")
              e.Iloc.Validate.block;
            check Alcotest.(option int) "index" (Some 1)
              e.Iloc.Validate.index;
            check Alcotest.bool "message locates the instruction" true
              (String.starts_with ~prefix:"x/more#1:"
                 (Iloc.Validate.error_to_string e))
        | Error [] -> Alcotest.fail "empty error list");
    tc "branch-dependent def detected" (fun () ->
        let src =
          "routine x\n\
           entry:\n\
          \  r1 <- ldi 1\n\
          \  cbr r1 a b\n\
           a:\n\
          \  r2 <- ldi 2\n\
          \  jmp join\n\
           b:\n\
          \  jmp join\n\
           join:\n\
          \  print r2\n\
          \  ret\n"
        in
        match Iloc.Validate.routine (Iloc.Parser.routine src) with
        | Ok () -> Alcotest.fail "partially-defined use accepted"
        | Error _ -> ());
    tc "ldro from writable data detected" (fun () ->
        let src =
          "routine x\ndata w[2]\nentry:\n  r1 <- ldro @w 0\n  ret\n"
        in
        match Iloc.Validate.routine (Iloc.Parser.routine src) with
        | Ok () -> Alcotest.fail "ldro from writable symbol accepted"
        | Error _ -> ());
    tc "unknown symbol detected" (fun () ->
        let src = "routine x\nentry:\n  r1 <- laddr @ghost\n  ret\n" in
        match Iloc.Validate.routine (Iloc.Parser.routine src) with
        | Ok () -> Alcotest.fail "unknown symbol accepted"
        | Error _ -> ());
    tc "def on all paths accepted" (fun () ->
        let src =
          "routine x\n\
           entry:\n\
          \  r1 <- ldi 1\n\
          \  cbr r1 a b\n\
           a:\n\
          \  r2 <- ldi 2\n\
          \  jmp join\n\
           b:\n\
          \  r2 <- ldi 3\n\
          \  jmp join\n\
           join:\n\
          \  print r2\n\
          \  ret\n"
        in
        match Iloc.Validate.routine (Iloc.Parser.routine src) with
        | Ok () -> ()
        | Error es ->
            Alcotest.failf "rejected: %s"
              (String.concat "; " (List.map Iloc.Validate.error_to_string es)));
  ]

(* --- builder --- *)

(* --- content hash (the serving cache's memo key) --- *)

let hash_of text = Cfg.content_hash (Iloc.Parser.routine text)

let tiny_routine =
  "routine tiny\nentry:\n  r1 <- ldi 5\n  r2 <- addi r1 3\n  jmp out\nout:\n\
  \  ret\n"

let content_hash_tests =
  [
    tc "structurally equal routines hash equal" (fun () ->
        let cfg = Iloc.Parser.routine sample_routine in
        let cfg2 = Iloc.Parser.routine sample_routine in
        check Alcotest.bool "sanity" true (Cfg.structural_equal cfg cfg2);
        check Alcotest.string "hash" (Cfg.content_hash cfg)
          (Cfg.content_hash cfg2));
    tc "hash survives a print/parse round trip" (fun () ->
        List.iter
          (fun text ->
            let cfg = Iloc.Parser.routine text in
            let reparsed =
              Iloc.Parser.routine (Iloc.Printer.routine_to_string cfg)
            in
            check Alcotest.string "stable" (Cfg.content_hash cfg)
              (Cfg.content_hash reparsed))
          [ sample_routine; tiny_routine ]);
    tc "hash separates payload, register, label and name edits" (fun () ->
        (* replace every occurrence of [pat] in the tiny routine *)
        let edited pat repl =
          let buf = Buffer.create (String.length tiny_routine) in
          let plen = String.length pat in
          let n = String.length tiny_routine in
          let i = ref 0 in
          while !i < n do
            if
              !i + plen <= n
              && String.equal (String.sub tiny_routine !i plen) pat
            then begin
              Buffer.add_string buf repl;
              i := !i + plen
            end
            else begin
              Buffer.add_char buf tiny_routine.[!i];
              incr i
            end
          done;
          Buffer.contents buf
        in
        let base = hash_of tiny_routine in
        List.iter
          (fun (what, pat, repl) ->
            check Alcotest.bool what true
              (hash_of (edited pat repl) <> base))
          [
            ("payload", "ldi 5", "ldi 6");
            ("register", "r1 <- ldi 5", "r3 <- ldi 5");
            ("label", "jmp out\nout:", "jmp fin\nfin:");
            ("name", "routine tiny", "routine big");
          ]);
    tc "hash separates float payloads by bits, identifying -0. with 0."
      (fun () ->
        let f x =
          hash_of (Printf.sprintf "routine f\nentry:\n  f1 <- lfi %s\n  ret\n" x)
        in
        check Alcotest.bool "different floats differ" true (f "1.5" <> f "2.5");
        check Alcotest.string "negative zero is zero" (f "0.") (f "-0."));
  ]

let builder_tests =
  [
    tc "duplicate block label rejected" (fun () ->
        let b = Builder.create "x" in
        Builder.block b "entry" [] ~term:(Instr.ret None);
        try
          Builder.block b "entry" [] ~term:(Instr.ret None);
          Alcotest.fail "duplicate label accepted"
        with Invalid_argument _ -> ());
    tc "terminator required" (fun () ->
        try
          ignore
            (Iloc.Block.make ~id:0 ~label:"x" ~body:[]
               ~term:(Instr.ldi r0 1) ());
          Alcotest.fail "non-terminator accepted as terminator"
        with Invalid_argument _ -> ());
    tc "terminator in body rejected" (fun () ->
        try
          ignore
            (Iloc.Block.make ~id:0 ~label:"x"
               ~body:[ Instr.jmp "x" ]
               ~term:(Instr.ret None) ());
          Alcotest.fail "terminator in body accepted"
        with Invalid_argument _ -> ());
  ]

(* printer/parser round trip on random structured programs: printing,
   reparsing and reprinting is a fixpoint *)
let roundtrip_prop =
  QCheck.Test.make ~count:100 ~name:"printer/parser round trip"
    Testutil.Gen_prog.arbitrary_cfg
    (fun cfg ->
      let text = Iloc.Printer.routine_to_string cfg in
      let cfg2 = Iloc.Parser.routine text in
      String.equal text (Iloc.Printer.routine_to_string cfg2))

(* reparsing also reconstructs the routine structurally: same blocks,
   labels, instructions, registers and symbols — a stronger statement than
   the print fixpoint, since it cannot be fooled by the printer dropping
   the same detail twice *)
let structural_roundtrip_prop =
  QCheck.Test.make ~count:100 ~name:"reparse is structurally identical"
    Testutil.Gen_prog.arbitrary_cfg
    (fun cfg ->
      let cfg2 = Iloc.Parser.routine (Iloc.Printer.routine_to_string cfg) in
      Cfg.structural_equal cfg cfg2)

(* parsing a random program and re-running it gives identical outcomes *)
let reparse_semantics_prop =
  QCheck.Test.make ~count:60 ~name:"reparsed programs behave identically"
    Testutil.Gen_prog.arbitrary_cfg
    (fun cfg ->
      let cfg2 = Iloc.Parser.routine (Iloc.Printer.routine_to_string cfg) in
      Sim.Interp.outcome_equal (Sim.Interp.run cfg) (Sim.Interp.run cfg2))

let () =
  Alcotest.run "iloc"
    [
      ("reg", reg_tests);
      ("instr", instr_tests);
      ("parse-instr", parse_instr_tests);
      ("routine", routine_tests);
      ("critical-edges", critical_edge_tests);
      ("validate", validate_tests);
      ("content-hash", content_hash_tests);
      ("builder", builder_tests);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            roundtrip_prop; structural_roundtrip_prop; reparse_semantics_prop;
          ] );
    ]
