(* Tests for lib/verify, the static translation validator.

   Three layers: clean allocations across fixtures/modes/machines must
   verify; hand-built allocated routines with planted mistakes must be
   rejected with errors naming the fault; and the two spill-code fault
   injections must be rejected statically — with no simulator run — one
   of them even though the dynamic oracle's inputs cannot see it. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

module Cfg = Iloc.Cfg
module Instr = Iloc.Instr
module Reg = Iloc.Reg
module Block = Iloc.Block
module Builder = Iloc.Builder

let verify ?(machine = Remat.Machine.standard) input output =
  Verify.Check.routine ~input ~output ~k_int:machine.Remat.Machine.k_int
    ~k_float:machine.Remat.Machine.k_float

let assert_verified ~what ?machine input output =
  match verify ?machine input output with
  | Ok _ -> ()
  | Error es ->
      Alcotest.failf "%s: static verifier rejected a sound allocation:\n%s"
        what
        (String.concat "\n" (List.map Verify.Error.to_string es))

let alloc_verified ~what ?mode ?machine input =
  let res = Remat.Allocator.run ?mode ?machine input in
  assert_verified ~what ?machine input res.Remat.Allocator.cfg;
  res

(* --- clean allocations verify --- *)

let tiny = Remat.Machine.make ~name:"tiny" ~k_int:4 ~k_float:4

let fixture_tests =
  [
    tc "every fixture, mode and machine verifies" (fun () ->
        List.iter
          (fun (name, cfg) ->
            List.iter
              (fun mode ->
                List.iter
                  (fun machine ->
                    let what =
                      Printf.sprintf "%s under %s@%d/%d" name
                        (Remat.Mode.to_string mode)
                        machine.Remat.Machine.k_int
                        machine.Remat.Machine.k_float
                    in
                    match
                      alloc_verified ~what ~mode ~machine cfg
                    with
                    | _ -> ()
                    | exception Remat.Spill_code.Pressure_too_high _ ->
                        (* A legitimate refusal on the smallest machine
                           is not a verification failure. *)
                        ())
                  [ Remat.Machine.standard; Remat.Machine.huge; tiny ])
              Remat.Mode.all)
          (Testutil.all_fixed ()));
    tc "allocate ~verify:true accepts the fixtures" (fun () ->
        List.iter
          (fun (_, cfg) ->
            ignore (Remat.Allocator.allocate ~verify:true cfg))
          (Testutil.all_fixed ()));
    tc "generated routines verify across modes and machines" (fun () ->
        for seed = 0 to 39 do
          let cfg = Fuzz.Gen.generate seed in
          List.iter
            (fun mode ->
              List.iter
                (fun machine ->
                  let what =
                    Printf.sprintf "seed %d under %s@%d/%d" seed
                      (Remat.Mode.to_string mode) machine.Remat.Machine.k_int
                      machine.Remat.Machine.k_float
                  in
                  ignore (alloc_verified ~what ~mode ~machine cfg))
                [ Remat.Machine.standard; Fuzz.Oracle.tight ])
            Remat.Mode.all
        done);
    tc "high-pressure generated routines verify" (fun () ->
        for seed = 0 to 9 do
          let cfg = Fuzz.Gen.generate ~config:Fuzz.Gen.high_pressure seed in
          List.iter
            (fun mode ->
              let what =
                Printf.sprintf "high-pressure seed %d under %s" seed
                  (Remat.Mode.to_string mode)
              in
              ignore
                (alloc_verified ~what ~mode ~machine:Fuzz.Oracle.tight cfg))
            Remat.Mode.core
        done);
  ]

(* --- hand-built accept/reject --- *)

(* input:  v2 := 1 + 2, printed and returned.
   output: the same computation on two physical registers. *)
let hand_input () =
  let v0 = Reg.make 10 Reg.Int
  and v1 = Reg.make 11 Reg.Int
  and v2 = Reg.make 12 Reg.Int in
  Cfg.make ~name:"hand"
    [
      Block.make ~id:0 ~label:"entry"
        ~body:
          [
            Instr.ldi v0 1; Instr.ldi v1 2; Instr.add v2 v0 v1;
            Instr.print_ v2;
          ]
        ~term:(Instr.ret (Some v2)) ();
    ]

let hand_output body ~ret =
  Cfg.make ~name:"hand"
    [ Block.make ~id:0 ~label:"entry" ~body ~term:(Instr.ret ret) () ]

let r0 = Reg.make 0 Reg.Int
let r1 = Reg.make 1 Reg.Int

let hand_tests =
  [
    tc "faithful hand allocation is accepted with counters" (fun () ->
        let output =
          hand_output
            [
              Instr.ldi r0 1; Instr.ldi r1 2; Instr.add r0 r0 r1;
              Instr.print_ r0;
            ]
            ~ret:(Some r0)
        in
        match verify (hand_input ()) output with
        | Error es ->
            Alcotest.failf "rejected: %s"
              (String.concat "; " (List.map Verify.Error.to_string es))
        | Ok r ->
            check Alcotest.int "blocks" 1 r.Verify.Check.blocks_checked;
            check Alcotest.int "matched" 2 r.Verify.Check.instrs_matched;
            (* add (2) + print (1) + ret (1) *)
            check Alcotest.int "uses" 4 r.Verify.Check.uses_checked;
            check Alcotest.int "remats" 2 r.Verify.Check.remats_checked);
    tc "swapped operand is rejected at the faulty instruction" (fun () ->
        let output =
          hand_output
            [
              Instr.ldi r0 1; Instr.ldi r1 2;
              (* operand 0 should carry v10's value (1), not v11's *)
              Instr.add r0 r1 r1; Instr.print_ r0;
            ]
            ~ret:(Some r0)
        in
        match verify (hand_input ()) output with
        | Ok _ -> Alcotest.fail "verifier accepted a wrong operand"
        | Error es ->
            let e = List.hd es in
            check Alcotest.string "kind" "wrong-value"
              (Verify.Error.kind_to_string e.Verify.Error.kind);
            check
              Alcotest.(option string)
              "block" (Some "entry") e.Verify.Error.block;
            check Alcotest.(option int) "index" (Some 2) e.Verify.Error.index);
    tc "wrong rematerialized constant is rejected" (fun () ->
        let output =
          hand_output
            [
              Instr.ldi r0 1; Instr.ldi r1 3 (* should be 2 *);
              Instr.add r0 r0 r1; Instr.print_ r0;
            ]
            ~ret:(Some r0)
        in
        match verify (hand_input ()) output with
        | Ok _ -> Alcotest.fail "verifier accepted a wrong constant"
        | Error es ->
            let e = List.hd es in
            check Alcotest.string "kind" "wrong-value"
              (Verify.Error.kind_to_string e.Verify.Error.kind);
            check Alcotest.(option int) "index" (Some 2) e.Verify.Error.index);
    tc "spill/reload slot agreement is required" (fun () ->
        (* Spill r0 to slot 0 but reload from slot 1. *)
        let output =
          hand_output
            [
              Instr.ldi r0 1; Instr.spill r0 0; Instr.ldi r1 2;
              Instr.reload r0 1; Instr.add r0 r0 r1; Instr.print_ r0;
            ]
            ~ret:(Some r0)
        in
        match verify (hand_input ()) output with
        | Ok _ -> Alcotest.fail "verifier accepted a skewed reload"
        | Error es ->
            let e = List.hd es in
            check Alcotest.string "kind" "wrong-value"
              (Verify.Error.kind_to_string e.Verify.Error.kind));
    tc "matching spill/reload through a slot is accepted" (fun () ->
        let output =
          hand_output
            [
              Instr.ldi r0 1; Instr.spill r0 0; Instr.ldi r1 2;
              Instr.reload r0 0; Instr.add r0 r0 r1; Instr.print_ r0;
            ]
            ~ret:(Some r0)
        in
        assert_verified ~what:"spill round trip" (hand_input ()) output);
    tc "dropped computation is rejected as unmatched" (fun () ->
        let output =
          hand_output
            [ Instr.ldi r0 1; Instr.ldi r1 2; Instr.print_ r0 ]
            ~ret:(Some r0)
        in
        match verify (hand_input ()) output with
        | Ok _ -> Alcotest.fail "verifier accepted a dropped instruction"
        | Error es ->
            check Alcotest.bool "some unmatched error" true
              (List.exists
                 (fun (e : Verify.Error.t) ->
                   e.Verify.Error.kind = Verify.Error.Unmatched)
                 es));
    tc "register above k is rejected" (fun () ->
        let big = Reg.make 9 Reg.Int in
        let output =
          hand_output
            [
              Instr.ldi r0 1; Instr.ldi big 2; Instr.add r0 r0 big;
              Instr.print_ r0;
            ]
            ~ret:(Some r0)
        in
        let machine = Remat.Machine.make ~name:"k4" ~k_int:4 ~k_float:4 in
        match verify ~machine (hand_input ()) output with
        | Ok _ -> Alcotest.fail "verifier accepted r9 on a 4-register machine"
        | Error es ->
            check Alcotest.bool "over-k reported" true
              (List.exists
                 (fun (e : Verify.Error.t) ->
                   e.Verify.Error.kind = Verify.Error.Over_k)
                 es));
    tc "branch retarget is rejected" (fun () ->
        let v = Reg.make 10 Reg.Int in
        let input =
          Cfg.make ~name:"branchy"
            [
              Block.make ~id:0 ~label:"entry" ~body:[ Instr.ldi v 1 ]
                ~term:(Instr.cbr v "a" "b") ();
              Block.make ~id:1 ~label:"a" ~body:[ Instr.print_ v ]
                ~term:(Instr.ret None) ();
              Block.make ~id:2 ~label:"b" ~body:[]
                ~term:(Instr.ret None) ();
            ]
        in
        let output =
          Cfg.make ~name:"branchy"
            [
              Block.make ~id:0 ~label:"entry" ~body:[ Instr.ldi r0 1 ]
                ~term:(Instr.cbr r0 "b" "a") (* arms swapped *) ();
              Block.make ~id:1 ~label:"a" ~body:[ Instr.print_ r0 ]
                ~term:(Instr.ret None) ();
              Block.make ~id:2 ~label:"b" ~body:[]
                ~term:(Instr.ret None) ();
            ]
        in
        match verify input output with
        | Ok _ -> Alcotest.fail "verifier accepted swapped branch arms"
        | Error es ->
            check Alcotest.bool "structure error" true
              (List.exists
                 (fun (e : Verify.Error.t) ->
                   e.Verify.Error.kind = Verify.Error.Structure)
                 es));
  ]

(* --- the two planted spill-code faults, caught with no simulator --- *)

let with_fault cell v f =
  cell := v;
  Fun.protect ~finally:(fun () -> cell := 0) f

(* A routine whose spilled integer constant feeds only a comparison it
   can never tip: the sum of m's elements stays far below both 100000
   and 100001, so the dynamic outcome is identical with and without the
   remat bias — only the static checker sees the drift. *)
let bias_victim ?(n = 14) () =
  let b = Builder.create "bias_victim" in
  Builder.data b ~readonly:false
    ~init:(Iloc.Symbol.Int_elts (List.init n (fun i -> i + 1)))
    "m" n;
  let limit = Builder.ireg b in
  let base = Builder.ireg b in
  let vs = List.init n (fun _ -> Builder.ireg b) in
  let acc = Builder.ireg b in
  let t = Builder.ireg b in
  Builder.block b "entry"
    ([ Instr.ldi limit 100000; Instr.laddr base "m" ]
    @ List.concat (List.mapi (fun k v -> [ Instr.loadi v base k ]) vs)
    @ (Instr.ldi acc 0 :: List.map (fun v -> Instr.add acc acc v) vs)
    @ [ Instr.cmp Instr.Lt t acc limit ])
    ~term:(Instr.cbr t "small" "big");
  Builder.block b "small" [ Instr.print_ acc ] ~term:(Instr.ret (Some acc));
  Builder.block b "big" [ Instr.print_ acc ] ~term:(Instr.ret (Some acc));
  Builder.finish b

let static_only reference cfg machine mode =
  (* Allocate and split the oracle's verdict into its static and dynamic
     halves: returns (static rejection?, dynamic divergence?). *)
  let res = Remat.Allocator.run ~mode ~machine cfg in
  let out = res.Remat.Allocator.cfg in
  let static =
    match
      Verify.Check.routine ~input:cfg ~output:out
        ~k_int:machine.Remat.Machine.k_int
        ~k_float:machine.Remat.Machine.k_float
    with
    | Ok _ -> None
    | Error es -> Some es
  in
  let dynamic =
    match Sim.Interp.run out with
    | outcome ->
        if Sim.Interp.outcome_equal reference outcome then None
        else Some "wrong outcome"
    | exception Sim.Interp.Runtime_error m -> Some m
  in
  (res, static, dynamic)

let planted_tests =
  [
    tc "reload skew is rejected statically, no simulator" (fun () ->
        let cfg = Testutil.high_pressure () in
        with_fault Remat.Spill_code.fault_reload_skew 1 (fun () ->
            let res = Remat.Allocator.run ~machine:tiny cfg in
            check Alcotest.bool "scenario spills through memory" true
              (res.Remat.Allocator.spilled_memory > 0);
            match
              verify ~machine:tiny cfg res.Remat.Allocator.cfg
            with
            | Ok _ -> Alcotest.fail "verifier accepted the skewed reloads"
            | Error es ->
                let e = List.hd es in
                check Alcotest.bool "fault is located" true
                  (e.Verify.Error.block <> None
                  && e.Verify.Error.index <> None)));
    tc "allocate ~verify:true raises on the reload skew" (fun () ->
        let cfg = Testutil.high_pressure () in
        with_fault Remat.Spill_code.fault_reload_skew 1 (fun () ->
            match
              Remat.Allocator.allocate ~verify:true ~machine:tiny cfg
            with
            | _ -> Alcotest.fail "allocate ~verify did not raise"
            | exception Remat.Allocator.Verification_error (msg :: _) ->
                check Alcotest.bool "error names the routine" true
                  (String.length msg > 0
                  && String.sub msg 0 13 = "high_pressure")
            | exception Remat.Allocator.Verification_error [] ->
                Alcotest.fail "empty verification error"));
    tc "remat bias: dynamically invisible, statically rejected" (fun () ->
        let cfg = bias_victim () in
        let reference =
          match Fuzz.Oracle.reference cfg with
          | Ok r -> r
          | Error m -> Alcotest.failf "reference failed: %s" m
        in
        (* Sound allocator first: clean both ways, and the scenario
           really rematerializes. *)
        let res, static, dynamic =
          static_only reference cfg tiny Remat.Mode.Briggs_remat
        in
        check Alcotest.bool "scenario rematerializes" true
          (res.Remat.Allocator.spilled_remat > 0);
        (match static with
        | None -> ()
        | Some es ->
            Alcotest.failf "clean build rejected: %s"
              (String.concat "; " (List.map Verify.Error.to_string es)));
        check Alcotest.(option string) "clean build runs clean" None dynamic;
        (* Armed: the simulator sees nothing, the checker rejects. *)
        with_fault Remat.Spill_code.fault_remat_bias 1 (fun () ->
            let _, static, dynamic =
              static_only reference cfg tiny Remat.Mode.Briggs_remat
            in
            check
              Alcotest.(option string)
              "bias invisible to the dynamic oracle" None dynamic;
            match static with
            | None -> Alcotest.fail "verifier accepted the biased remat"
            | Some es ->
                let e = List.hd es in
                check Alcotest.string "kind" "wrong-value"
                  (Verify.Error.kind_to_string e.Verify.Error.kind);
                check Alcotest.bool "fault is located" true
                  (e.Verify.Error.block <> None
                  && e.Verify.Error.index <> None)));
    tc "fuzz oracle reports the static class for the remat bias" (fun () ->
        let cfg = bias_victim () in
        with_fault Remat.Spill_code.fault_remat_bias 1 (fun () ->
            let config =
              {
                Fuzz.Oracle.optimize = false;
                mode = Remat.Mode.Briggs_remat;
                machine = tiny;
              }
            in
            match Fuzz.Oracle.reference cfg with
            | Error m -> Alcotest.failf "reference failed: %s" m
            | Ok reference -> (
                match Fuzz.Oracle.check_config ~reference cfg config with
                | Some d ->
                    check Alcotest.string "class" "static"
                      (Fuzz.Oracle.class_of d)
                | None -> Alcotest.fail "oracle missed the biased remat")));
  ]

(* --- domain gate: precise unsupported errors --- *)

let first_phi_label cfg =
  let found = ref None in
  Cfg.iter_blocks
    (fun b ->
      if !found = None && b.Block.phis <> [] then
        found := Some b.Block.label)
    cfg;
  Option.get !found

let gate_tests =
  [
    tc "SSA source is rejected naming the first φ block" (fun () ->
        let plain = Testutil.diamond () in
        let ssa = Ssa.Construct.run (Cfg.split_critical_edges plain) in
        match verify ssa plain with
        | Ok _ -> Alcotest.fail "accepted an SSA source"
        | Error es ->
            let e = List.hd es in
            check Alcotest.bool "unsupported" true
              (Verify.Error.is_unsupported e);
            check
              Alcotest.(option string)
              "φ block named"
              (Some (first_phi_label ssa))
              e.Verify.Error.block);
    tc "SSA allocated routine is rejected naming the first φ block"
      (fun () ->
        let plain = Testutil.diamond () in
        let ssa = Ssa.Construct.run (Cfg.split_critical_edges plain) in
        match verify plain ssa with
        | Ok _ -> Alcotest.fail "accepted an SSA output"
        | Error es ->
            let e = List.hd es in
            check Alcotest.bool "unsupported" true
              (Verify.Error.is_unsupported e);
            check
              Alcotest.(option string)
              "φ block named"
              (Some (first_phi_label ssa))
              e.Verify.Error.block);
    tc "pre-spilled source is rejected naming block and instruction"
      (fun () ->
        let pre =
          Cfg.make ~name:"pre"
            [
              Block.make ~id:0 ~label:"entry"
                ~body:
                  [
                    Instr.ldi r0 1;
                    Instr.spill r0 0;
                    Instr.reload r1 0;
                    Instr.print_ r1;
                  ]
                ~term:(Instr.ret (Some r1)) ();
            ]
        in
        match verify pre pre with
        | Ok _ -> Alcotest.fail "accepted a pre-spilled source"
        | Error es ->
            let e = List.hd es in
            check Alcotest.bool "unsupported" true
              (Verify.Error.is_unsupported e);
            check
              Alcotest.(option string)
              "block named" (Some "entry") e.Verify.Error.block;
            check
              Alcotest.(option int)
              "spill's index named" (Some 1) e.Verify.Error.index);
    tc "allocator's verify tolerates the gate (nothing proved, nothing \
        rejected)" (fun () ->
        (* SSA-mode allocation of a routine the gate cannot validate —
           input containing spill code — must not raise. *)
        let pre =
          Iloc.Parser.routine
            (Iloc.Printer.routine_to_string
               (let res = Remat.Allocator.run (Testutil.counted_loop ()) in
                res.Remat.Allocator.cfg))
        in
        if
          Cfg.fold_blocks
            (fun acc b ->
              acc
              || List.exists
                   (fun (i : Instr.t) ->
                     match i.Instr.op with
                     | Instr.Spill _ | Instr.Reload _ -> true
                     | _ -> false)
                   b.Block.body)
            false pre
        then
          ignore
            (Remat.Allocator.allocate ~verify:true ~mode:Remat.Mode.Ssa_remat
               pre));
  ]

let () =
  Alcotest.run "verify"
    [
      ("fixtures", fixture_tests);
      ("hand", hand_tests);
      ("planted", planted_tests);
      ("gate", gate_tests);
    ]
