(* Tests for the allocator's component phases: the tag lattice, sparse
   propagation, renumber, interference graph, coalescing, spill costs,
   simplify and select. *)

module Cfg = Iloc.Cfg
module Reg = Iloc.Reg
module Instr = Iloc.Instr
module Tag = Remat.Tag

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let tag_testable = Alcotest.testable Tag.pp Tag.equal

(* --- lattice --- *)

let tag_unit =
  [
    tc "initial tags" (fun () ->
        check tag_testable "ldi" (Tag.Inst (Instr.Ldi 5))
          (Tag.initial (Instr.Ldi 5));
        check tag_testable "copy" Tag.Top (Tag.initial Instr.Copy);
        check tag_testable "add" Tag.Bottom (Tag.initial Instr.Add);
        check tag_testable "load" Tag.Bottom (Tag.initial Instr.Load));
    tc "meet laws" (fun () ->
        let i5 = Tag.Inst (Instr.Ldi 5) and i6 = Tag.Inst (Instr.Ldi 6) in
        check tag_testable "T ^ x" i5 (Tag.meet Tag.Top i5);
        check tag_testable "x ^ T" i5 (Tag.meet i5 Tag.Top);
        check tag_testable "B ^ x" Tag.Bottom (Tag.meet Tag.Bottom i5);
        check tag_testable "i ^ i" i5 (Tag.meet i5 i5);
        check tag_testable "i ^ j" Tag.Bottom (Tag.meet i5 i6);
        check tag_testable "T ^ T" Tag.Top (Tag.meet Tag.Top Tag.Top));
    tc "meet is commutative and associative on samples" (fun () ->
        let elems =
          [
            Tag.Top;
            Tag.Bottom;
            Tag.Inst (Instr.Ldi 1);
            Tag.Inst (Instr.Ldi 2);
            Tag.Inst (Instr.Laddr ("a", 0));
          ]
        in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                check Alcotest.bool "comm" true
                  (Tag.equal (Tag.meet a b) (Tag.meet b a));
                List.iter
                  (fun c ->
                    check Alcotest.bool "assoc" true
                      (Tag.equal
                         (Tag.meet a (Tag.meet b c))
                         (Tag.meet (Tag.meet a b) c)))
                  elems)
              elems)
          elems);
    tc "leq order" (fun () ->
        let i = Tag.Inst (Instr.Ldi 1) in
        check Alcotest.bool "B <= i" true (Tag.leq Tag.Bottom i);
        check Alcotest.bool "i <= T" true (Tag.leq i Tag.Top);
        check Alcotest.bool "T <= i" false (Tag.leq Tag.Top i);
        check Alcotest.bool "i <= i" true (Tag.leq i i));
  ]

(* --- propagation --- *)

let tags_of cfg =
  let ssa = Ssa.Construct.run (Cfg.split_critical_edges cfg) in
  let vals = Ssa.Values.analyze ssa in
  let tags = Remat.Remat_analysis.run ssa vals in
  (ssa, vals, tags)

let propagation_unit =
  [
    tc "copies take their source's tag" (fun () ->
        let src =
          "routine x\n\
           entry:\n\
          \  r1 <- ldi 7\n\
          \  r2 <- copy r1\n\
          \  r3 <- addi r2 1\n\
          \  r4 <- copy r3\n\
          \  print r4\n\
          \  ret\n"
        in
        let _, vals, tags = tags_of (Iloc.Parser.routine src) in
        let tag_of_value v =
          (* values keep distinct names; find by scanning defs *)
          let found = ref Tag.Top in
          for i = 0 to Ssa.Values.count vals - 1 do
            match Ssa.Values.def vals i with
            | Ssa.Values.Def_instr { instr; _ }
              when instr.Instr.op = v ->
                found := tags.(i)
            | _ -> ()
          done;
          !found
        in
        check tag_testable "ldi is inst" (Tag.Inst (Instr.Ldi 7))
          (tag_of_value (Instr.Ldi 7));
        (* both copies exist; find them by their tags *)
        let copy_tags = ref [] in
        for i = 0 to Ssa.Values.count vals - 1 do
          match Ssa.Values.def vals i with
          | Ssa.Values.Def_instr { instr = { Instr.op = Instr.Copy; _ }; _ } ->
              copy_tags := tags.(i) :: !copy_tags
          | _ -> ()
        done;
        check Alcotest.int "two copies" 2 (List.length !copy_tags);
        check Alcotest.bool "one inst copy" true
          (List.exists (fun t -> Tag.equal t (Tag.Inst (Instr.Ldi 7))) !copy_tags);
        check Alcotest.bool "one bottom copy" true
          (List.exists (fun t -> Tag.equal t Tag.Bottom) !copy_tags));
    tc "phi of equal insts stays inst" (fun () ->
        let src =
          "routine x\n\
           entry:\n\
          \  r1 <- ldi 1\n\
          \  r2 <- laddr @a\n\
          \  cbr r1 a b\n\
           a:\n\
          \  r2 <- laddr @a\n\
          \  jmp join\n\
           b:\n\
          \  r2 <- laddr @a\n\
          \  jmp join\n\
           join:\n\
          \  r3 <- loadi r2 0\n\
          \  print r3\n\
          \  ret\n\
           routine pad\n\
           entry:\n\
          \  ret\n"
        in
        (* need the symbol: build via program text with data *)
        ignore src;
        let src =
          "routine x\n\
           data const a[2] = { 5 6 }\n\
           entry:\n\
          \  r1 <- ldi 1\n\
          \  r2 <- laddr @a\n\
          \  cbr r1 a b\n\
           a:\n\
          \  r2 <- laddr @a\n\
          \  jmp join\n\
           b:\n\
          \  r2 <- laddr @a\n\
          \  jmp join\n\
           join:\n\
          \  r3 <- loadi r2 0\n\
          \  print r3\n\
          \  ret\n"
        in
        let _, vals, tags = tags_of (Iloc.Parser.routine src) in
        for i = 0 to Ssa.Values.count vals - 1 do
          match Ssa.Values.def vals i with
          | Ssa.Values.Def_phi _ ->
              check tag_testable "phi tag" (Tag.Inst (Instr.Laddr ("a", 0))) tags.(i)
          | _ -> ()
        done);
    tc "phi of different insts goes bottom" (fun () ->
        let src =
          "routine x\n\
           entry:\n\
          \  r1 <- ldi 1\n\
          \  r2 <- ldi 10\n\
          \  cbr r1 a b\n\
           a:\n\
          \  r2 <- ldi 20\n\
          \  jmp join\n\
           b:\n\
          \  jmp join\n\
           join:\n\
          \  print r2\n\
          \  ret\n"
        in
        let _, vals, tags = tags_of (Iloc.Parser.routine src) in
        let seen_phi = ref false in
        for i = 0 to Ssa.Values.count vals - 1 do
          match Ssa.Values.def vals i with
          | Ssa.Values.Def_phi _ ->
              seen_phi := true;
              check tag_testable "phi tag" Tag.Bottom tags.(i)
          | _ -> ()
        done;
        check Alcotest.bool "phi found" true !seen_phi);
    tc "no top survives" (fun () ->
        List.iter
          (fun (_, cfg) ->
            let _, _, tags = tags_of cfg in
            Array.iter
              (fun t ->
                check Alcotest.bool "not top" false (Tag.equal t Tag.Top))
              tags)
          (Testutil.all_fixed ()));
    tc "figure 1 pointer values" (fun () ->
        (* In fig1, p's values: laddr (inst), p+1 (bottom), and the phi
           merging them (bottom). *)
        let _, vals, tags = tags_of (Testutil.fig1 ()) in
        let laddr_inst = ref 0 and phi_bottom = ref 0 in
        for i = 0 to Ssa.Values.count vals - 1 do
          (match Ssa.Values.def vals i with
          | Ssa.Values.Def_instr
              { instr = { Instr.op = Instr.Laddr _ as op; _ }; _ } ->
              if Tag.equal tags.(i) (Tag.Inst op) then incr laddr_inst
          | _ -> ());
          match Ssa.Values.def vals i with
          | Ssa.Values.Def_phi _ ->
              if Tag.equal tags.(i) Tag.Bottom then incr phi_bottom
          | _ -> ()
        done;
        check Alcotest.bool "laddr tagged inst" true (!laddr_inst >= 1);
        check Alcotest.bool "some phi is bottom" true (!phi_bottom >= 1));
  ]

(* --- renumber --- *)

let renumber_unit =
  [
    tc "briggs isolates the never-killed value with one split" (fun () ->
        (* Figure 3: the minimal placement needs exactly one split copy
           for the pointer (p0 | p12). *)
        let cfg = Cfg.split_critical_edges (Testutil.fig1 ()) in
        let rn = Remat.Renumber.run Remat.Mode.Briggs_remat cfg in
        check Alcotest.bool "has splits" true (rn.Remat.Renumber.split_pairs <> []);
        (match Iloc.Validate.routine rn.Remat.Renumber.cfg with
        | Ok () -> ()
        | Error es ->
            Alcotest.failf "renumbered code invalid: %s"
              (String.concat "; " (List.map Iloc.Validate.error_to_string es)));
        (* The renumbered code must still behave identically. *)
        Testutil.assert_equiv ~what:"renumber fig1" cfg rn.Remat.Renumber.cfg);
    tc "chaitin modes never split" (fun () ->
        List.iter
          (fun mode ->
            List.iter
              (fun (name, cfg) ->
                let cfg = Cfg.split_critical_edges cfg in
                let rn = Remat.Renumber.run mode cfg in
                check Alcotest.int (name ^ " no splits") 0
                  (List.length rn.Remat.Renumber.split_pairs);
                Testutil.assert_equiv ~what:(name ^ " renumber")
                  cfg rn.Remat.Renumber.cfg)
              (Testutil.all_fixed ()))
          [ Remat.Mode.No_remat; Remat.Mode.Chaitin_remat ]);
    tc "renumber preserves behaviour in all modes" (fun () ->
        List.iter
          (fun mode ->
            List.iter
              (fun (name, cfg) ->
                let cfg = Cfg.split_critical_edges cfg in
                let rn = Remat.Renumber.run mode cfg in
                Testutil.assert_equiv
                  ~what:
                    (Printf.sprintf "%s renumber %s" name
                       (Remat.Mode.to_string mode))
                  cfg rn.Remat.Renumber.cfg)
              (Testutil.all_fixed ()))
          Remat.Mode.all);
    tc "every live range is tagged" (fun () ->
        let cfg = Cfg.split_critical_edges (Testutil.fig1 ()) in
        let rn = Remat.Renumber.run Remat.Mode.Briggs_remat cfg in
        Reg.Set.iter
          (fun r ->
            match Reg.Tbl.find_opt rn.Remat.Renumber.tags r with
            | Some (Tag.Inst _ | Tag.Bottom) -> ()
            | Some Tag.Top -> Alcotest.failf "%s tagged Top" (Reg.to_string r)
            | None -> Alcotest.failf "%s untagged" (Reg.to_string r))
          (Cfg.all_regs rn.Remat.Renumber.cfg));
    tc "phi-splits mode splits bottom merges too" (fun () ->
        let cfg = Cfg.split_critical_edges (Testutil.counted_loop ()) in
        let minimal = Remat.Renumber.run Remat.Mode.Briggs_remat cfg in
        let eager = Remat.Renumber.run Remat.Mode.Briggs_remat_phi_splits cfg in
        check Alcotest.bool "more splits" true
          (List.length eager.Remat.Renumber.split_pairs
          > List.length minimal.Remat.Renumber.split_pairs);
        Testutil.assert_equiv ~what:"phi-splits renumber" cfg
          eager.Remat.Renumber.cfg);
  ]

(* --- interference --- *)

let interference_unit =
  [
    tc "simultaneously live values interfere" (fun () ->
        let src =
          "routine x\n\
           entry:\n\
          \  r1 <- ldi 1\n\
          \  r2 <- ldi 2\n\
          \  r3 <- add r1 r2\n\
          \  print r1\n\
          \  print r3\n\
          \  ret\n"
        in
        let cfg = Iloc.Parser.routine src in
        let live = Dataflow.Liveness.compute cfg in
        let g = Remat.Interference.build cfg live in
        let i r = Remat.Interference.index g (Reg.make r Reg.Int) in
        check Alcotest.bool "r1-r2" true (Remat.Interference.interfere g (i 1) (i 2));
        check Alcotest.bool "r1-r3" true (Remat.Interference.interfere g (i 1) (i 3));
        (* r2 dies at the add; r3 is born there -> no interference *)
        check Alcotest.bool "r2-r3" false
          (Remat.Interference.interfere g (i 2) (i 3)));
    tc "copy source does not interfere with destination" (fun () ->
        let src =
          "routine x\n\
           entry:\n\
          \  r1 <- ldi 1\n\
          \  r2 <- copy r1\n\
          \  print r2\n\
          \  print r1\n\
          \  ret\n"
        in
        let cfg = Iloc.Parser.routine src in
        let live = Dataflow.Liveness.compute cfg in
        let g = Remat.Interference.build cfg live in
        let i r = Remat.Interference.index g (Reg.make r Reg.Int) in
        check Alcotest.bool "r1-r2" false
          (Remat.Interference.interfere g (i 1) (i 2)));
    tc "classes do not interfere" (fun () ->
        let src =
          "routine x\n\
           entry:\n\
          \  r1 <- ldi 1\n\
          \  f1 <- lfi 1.5\n\
          \  print r1\n\
          \  print f1\n\
          \  ret\n"
        in
        let cfg = Iloc.Parser.routine src in
        let live = Dataflow.Liveness.compute cfg in
        let g = Remat.Interference.build cfg live in
        let ii = Remat.Interference.index g (Reg.make 1 Reg.Int) in
        let fi = Remat.Interference.index g (Reg.make 1 Reg.Float) in
        check Alcotest.bool "cross-class" false
          (Remat.Interference.interfere g ii fi);
        check Alcotest.int "edges" 0 (Remat.Interference.n_edges g));
    tc "degree equals adjacency length" (fun () ->
        let cfg = Testutil.high_pressure () in
        let rn = Remat.Renumber.run Remat.Mode.Briggs_remat
            (Cfg.split_critical_edges cfg) in
        let live = Dataflow.Liveness.compute rn.Remat.Renumber.cfg in
        let g = Remat.Interference.build rn.Remat.Renumber.cfg live in
        for i = 0 to Remat.Interference.n_nodes g - 1 do
          check Alcotest.int "degree" (List.length (Remat.Interference.neighbors g i))
            (Remat.Interference.degree g i)
        done);
    tc "matrix is symmetric" (fun () ->
        let cfg = Testutil.fig1 () in
        let rn = Remat.Renumber.run Remat.Mode.Briggs_remat
            (Cfg.split_critical_edges cfg) in
        let live = Dataflow.Liveness.compute rn.Remat.Renumber.cfg in
        let g = Remat.Interference.build rn.Remat.Renumber.cfg live in
        let n = Remat.Interference.n_nodes g in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            check Alcotest.bool "sym"
              (Remat.Interference.interfere g i j)
              (Remat.Interference.interfere g j i)
          done
        done);
    tc "sparse edge set is representation-transparent" (fun () ->
        (* The same edge list through a graph small enough for the bit
           matrix and one node past the sparse threshold: every
           observable — membership, degrees, adjacency order, merge
           results — must be identical on the shared nodes. *)
        let edges =
          List.concat_map
            (fun i -> [ (i, (i + 7) mod 60); (i, (i * 13 + 1) mod 60) ])
            (List.init 60 Fun.id)
        in
        let small = Remat.Interference.of_edges 60 edges in
        let big =
          Remat.Interference.of_edges
            (Remat.Interference.dense_node_limit + 1)
            edges
        in
        check Alcotest.bool "small is dense" true
          (Option.is_some (Remat.Interference.scratch_matrix small));
        check Alcotest.bool "big is sparse" true
          (Option.is_none (Remat.Interference.scratch_matrix big));
        check Alcotest.int "edge count"
          (Remat.Interference.n_edges small)
          (Remat.Interference.n_edges big);
        for i = 0 to 59 do
          check (Alcotest.list Alcotest.int)
            (Printf.sprintf "adjacency of %d" i)
            (Remat.Interference.neighbors small i)
            (Remat.Interference.neighbors big i)
        done;
        Remat.Interference.merge small ~keep:0 ~drop:1;
        Remat.Interference.merge big ~keep:0 ~drop:1;
        for i = 0 to 59 do
          check (Alcotest.list Alcotest.int)
            (Printf.sprintf "post-merge adjacency of %d" i)
            (Remat.Interference.neighbors small i)
            (Remat.Interference.neighbors big i)
        done);
  ]

(* --- spill costs --- *)

let dense_live_in_iter (live : Dataflow.Liveness.t) b f =
  Dataflow.Bitset.iter
    (fun li -> f (Dataflow.Reg_index.reg live.Dataflow.Liveness.regs li))
    live.Dataflow.Liveness.live_in.(b)

let spill_cost_unit =
  [
    tc "deep loops weigh more" (fun () ->
        let cfg = Cfg.split_critical_edges (Testutil.counted_loop ()) in
        let rn = Remat.Renumber.run Remat.Mode.No_remat cfg in
        let c = rn.Remat.Renumber.cfg in
        let dom = Dataflow.Dominance.compute c in
        let loops = Dataflow.Loops.compute c dom in
        let live = Dataflow.Liveness.compute c in
        let g = Remat.Interference.build c live in
        let costs =
          Remat.Spill_cost.compute c loops g ~live_in_iter:(dense_live_in_iter live) ~tags:rn.Remat.Renumber.tags
            ~infinite:(Reg.Tbl.create 1)
        in
        (* the accumulator lives in the loop: cost must include 10x
           weighted accesses, so it exceeds any entry-only value's cost *)
        let max_cost = Array.fold_left max 0. costs in
        check Alcotest.bool "loop cost dominates" true (max_cost >= 40.));
    tc "remat values are cheaper to spill" (fun () ->
        let src =
          "routine x\n\
           data const t[2] = { 1 2 }\n\
           entry:\n\
          \  r1 <- laddr @t\n\
          \  r2 <- loadi r1 0\n\
          \  r3 <- loadi r1 1\n\
          \  r4 <- add r2 r3\n\
          \  r5 <- loadi r1 0\n\
          \  r6 <- add r4 r5\n\
          \  print r6\n\
          \  print r1\n\
          \  ret\n"
        in
        let cfg = Cfg.split_critical_edges (Iloc.Parser.routine src) in
        let rn = Remat.Renumber.run Remat.Mode.Briggs_remat cfg in
        let c = rn.Remat.Renumber.cfg in
        let dom = Dataflow.Dominance.compute c in
        let loops = Dataflow.Loops.compute c dom in
        let live = Dataflow.Liveness.compute c in
        let g = Remat.Interference.build c live in
        let briggs_costs =
          Remat.Spill_cost.compute c loops g ~live_in_iter:(dense_live_in_iter live) ~tags:rn.Remat.Renumber.tags
            ~infinite:(Reg.Tbl.create 1)
        in
        let bottom_tags = Reg.Tbl.create 8 in
        let no_remat_costs =
          Remat.Spill_cost.compute c loops g ~live_in_iter:(dense_live_in_iter live) ~tags:bottom_tags
            ~infinite:(Reg.Tbl.create 1)
        in
        (* Renumber renames registers, so locate the laddr-tagged live
           range through the tag table; it must be cheaper with tags than
           without. *)
        let laddr_lr =
          Reg.Tbl.fold
            (fun r tag acc ->
              match tag with
              | Tag.Inst (Instr.Laddr ("t", _)) -> Some r
              | _ -> acc)
            rn.Remat.Renumber.tags None
        in
        let i1 =
          Remat.Interference.index g (Option.get laddr_lr)
        in
        check Alcotest.bool "cheaper" true
          (briggs_costs.(i1) < no_remat_costs.(i1)));
    tc "infinite marking" (fun () ->
        let cfg = Testutil.straight () in
        let live = Dataflow.Liveness.compute cfg in
        let g = Remat.Interference.build cfg live in
        let dom = Dataflow.Dominance.compute cfg in
        let loops = Dataflow.Loops.compute cfg dom in
        let infinite = Reg.Tbl.create 4 in
        Reg.Tbl.replace infinite (Reg.make 1 Reg.Int) ();
        let costs =
          Remat.Spill_cost.compute cfg loops g ~live_in_iter:(dense_live_in_iter live) ~tags:(Reg.Tbl.create 1) ~infinite
        in
        let i1 = Remat.Interference.index g (Reg.make 1 Reg.Int) in
        check Alcotest.bool "infinite" true (costs.(i1) = infinity));
  ]

(* --- simplify and select --- *)

let color_unit =
  let build_graph cfg =
    let live = Dataflow.Liveness.compute cfg in
    Remat.Interference.build cfg live
  in
  [
    tc "low-pressure code colors without spilling" (fun () ->
        let cfg = Testutil.straight () in
        let g = build_graph cfg in
        let k _ = 4 in
        let costs = Array.make (Remat.Interference.n_nodes g) 1.0 in
        let order = Remat.Simplify.run g ~k ~costs in
        check Alcotest.int "order covers graph"
          (Remat.Interference.n_nodes g)
          (List.length order);
        let partners = Array.make (Remat.Interference.n_nodes g) [] in
        let sel = Remat.Select.run g ~k ~order ~partners in
        check Alcotest.int "no spills" 0 (List.length sel.Remat.Select.spilled));
    tc "coloring is proper" (fun () ->
        let cfg = Testutil.high_pressure () in
        let rn =
          Remat.Renumber.run Remat.Mode.Briggs_remat
            (Cfg.split_critical_edges cfg)
        in
        let g = build_graph rn.Remat.Renumber.cfg in
        let k _ = 32 in
        let costs = Array.make (Remat.Interference.n_nodes g) 1.0 in
        let order = Remat.Simplify.run g ~k ~costs in
        let partners = Array.make (Remat.Interference.n_nodes g) [] in
        let sel = Remat.Select.run g ~k ~order ~partners in
        check Alcotest.int "no spills" 0 (List.length sel.Remat.Select.spilled);
        for i = 0 to Remat.Interference.n_nodes g - 1 do
          List.iter
            (fun j ->
              if
                sel.Remat.Select.colors.(i) <> None
                && sel.Remat.Select.colors.(i) = sel.Remat.Select.colors.(j)
              then Alcotest.failf "neighbors %d %d share a color" i j)
            (Remat.Interference.neighbors g i)
        done);
    tc "optimistic coloring beats pessimistic on a cycle" (fun () ->
        (* A 4-cycle is 2-colorable although every node has degree 2; the
           optimistic allocator must find the 2-coloring. *)
        let src =
          "routine x\n\
           entry:\n\
          \  r1 <- ldi 1\n\
          \  r2 <- ldi 2\n\
          \  r3 <- add r1 r2\n\
          \  r4 <- add r2 r3\n\
          \  r5 <- add r3 r4\n\
          \  r6 <- add r4 r5\n\
          \  print r6\n\
          \  ret\n"
        in
        let cfg = Iloc.Parser.routine src in
        let g = build_graph cfg in
        let k _ = 2 in
        let costs = Array.make (Remat.Interference.n_nodes g) 1.0 in
        let order = Remat.Simplify.run g ~k ~costs in
        let partners = Array.make (Remat.Interference.n_nodes g) [] in
        let sel = Remat.Select.run g ~k ~order ~partners in
        check Alcotest.int "no spills" 0 (List.length sel.Remat.Select.spilled));
    tc "biased coloring matches partners" (fun () ->
        (* Two non-interfering live ranges connected by a split should end
           up in the same register. *)
        let src =
          "routine x\n\
           entry:\n\
          \  r1 <- ldi 1\n\
          \  r2 <- copy r1\n\
          \  print r2\n\
          \  ret\n"
        in
        let cfg = Iloc.Parser.routine src in
        let g = build_graph cfg in
        let k _ = 8 in
        let i1 = Remat.Interference.index g (Reg.make 1 Reg.Int) in
        let i2 = Remat.Interference.index g (Reg.make 2 Reg.Int) in
        let partners = Array.make (Remat.Interference.n_nodes g) [] in
        partners.(i1) <- [ i2 ];
        partners.(i2) <- [ i1 ];
        let costs = Array.make (Remat.Interference.n_nodes g) 1.0 in
        let order = Remat.Simplify.run g ~k ~costs in
        let sel = Remat.Select.run g ~k ~order ~partners in
        check Alcotest.bool "same color" true
          (sel.Remat.Select.colors.(i1) = sel.Remat.Select.colors.(i2)));
  ]

(* --- §6 loop splitting --- *)

(* A value defined before the loop, unused inside it, used after it: the
   case the paper's discussion of Figure 3 singles out (the value p0 with
   code between its definition and the loop). *)
let live_through_routine () =
  Iloc.Parser.routine
    "routine x\n\
     data c[4] = { 7 8 9 10 }\n\
     entry:\n\
    \  r9 <- laddr @c\n\
    \  r1 <- loadi r9 0\n\
    \  r2 <- ldi 5\n\
    \  r7 <- ldi 0\n\
    \  jmp head\n\
     head:\n\
    \  r3 <- ldi 0\n\
    \  r4 <- cmp_gt r2 r3\n\
    \  cbr r4 body done\n\
     body:\n\
    \  r7 <- addi r7 3\n\
    \  r2 <- subi r2 1\n\
    \  jmp head\n\
     done:\n\
    \  print r1\n\
    \  print r7\n\
    \  ret\n"

let splitting_unit =
  let renumbered mode cfg =
    Remat.Renumber.run mode (Cfg.split_critical_edges cfg)
  in
  [
    tc "all-loops splitting preserves behaviour" (fun () ->
        List.iter
          (fun (name, cfg) ->
            let cfg = Cfg.split_critical_edges cfg in
            let rn = renumbered Remat.Mode.Briggs_remat cfg in
            let pairs =
              Remat.Splitting.run `All_loops rn.Remat.Renumber.cfg
                ~tags:rn.Remat.Renumber.tags
            in
            ignore pairs;
            (match Iloc.Validate.routine rn.Remat.Renumber.cfg with
            | Ok () -> ()
            | Error es ->
                Alcotest.failf "%s: split code invalid: %s" name
                  (String.concat "; "
                     (List.map Iloc.Validate.error_to_string es)));
            Testutil.assert_equiv ~what:(name ^ " loop split") cfg
              rn.Remat.Renumber.cfg)
          (Testutil.all_fixed ()));
    tc "live-through value gets entry and exit copies" (fun () ->
        let rn = renumbered Remat.Mode.Briggs_remat (live_through_routine ()) in
        let before_copies =
          Cfg.fold_blocks
            (fun acc b ->
              acc
              + List.length (List.filter Instr.is_copy b.Iloc.Block.body))
            0 rn.Remat.Renumber.cfg
        in
        let pairs =
          Remat.Splitting.run `Unreferenced rn.Remat.Renumber.cfg
            ~tags:rn.Remat.Renumber.tags
        in
        check Alcotest.bool "pairs recorded" true (pairs <> []);
        let after_copies =
          Cfg.fold_blocks
            (fun acc b ->
              acc
              + List.length (List.filter Instr.is_copy b.Iloc.Block.body))
            0 rn.Remat.Renumber.cfg
        in
        check Alcotest.bool "copies inserted" true
          (after_copies > before_copies);
        Testutil.assert_equiv ~what:"unreferenced split"
          (live_through_routine ()) rn.Remat.Renumber.cfg);
    tc "unreferenced split isolates the spill victim" (fun () ->
        (* With the live-through value split, the loop-crossing segment
           has no references, so the allocator can spill it without
           adding any in-loop memory traffic. *)
        let cfg = live_through_routine () in
        let machine = Remat.Machine.make ~name:"m" ~k_int:2 ~k_float:2 in
        List.iter
          (fun mode -> ignore (Testutil.alloc_equiv ~mode ~machine cfg))
          [ Remat.Mode.Briggs_remat; Remat.Mode.Briggs_split_unreferenced ]);
    tc "loop-split modes behave like briggs through the allocator" (fun () ->
        List.iter
          (fun (name, cfg) ->
            List.iter
              (fun mode ->
                let what =
                  Printf.sprintf "%s under %s" name (Remat.Mode.to_string mode)
                in
                ignore (Testutil.alloc_equiv ~mode cfg) |> fun () -> ignore what)
              [
                Remat.Mode.Briggs_split_all_loops;
                Remat.Mode.Briggs_split_outer_loops;
                Remat.Mode.Briggs_split_unreferenced;
              ])
          (Testutil.all_fixed ()));
    tc "dag routines are untouched" (fun () ->
        let rn = renumbered Remat.Mode.Briggs_remat (Testutil.diamond ()) in
        let pairs =
          Remat.Splitting.run `All_loops rn.Remat.Renumber.cfg
            ~tags:rn.Remat.Renumber.tags
        in
        check Alcotest.int "no pairs" 0 (List.length pairs));
  ]

(* interference matches the naive definition: two same-class registers
   interfere iff one is defined while the other is in some live-out or
   upward-exposed position — checked against a direct recomputation *)
let interference_prop =
  QCheck.Test.make ~count:40 ~name:"interference matches naive recomputation"
    Testutil.Gen_prog.arbitrary_cfg
    (fun cfg ->
      let live = Dataflow.Liveness.compute cfg in
      let g = Remat.Interference.build cfg live in
      (* naive: recompute the live set per instruction position *)
      let expected = Hashtbl.create 64 in
      Cfg.iter_blocks
        (fun b ->
          let live_now =
            ref
              (Reg.Set.of_list (Dataflow.Liveness.live_out live b.Iloc.Block.id))
          in
          List.iter
            (fun (i : Instr.t) ->
              (match i.Instr.dst with
              | Some d ->
                  let skip =
                    if Instr.is_copy i then Some i.Instr.srcs.(0) else None
                  in
                  Reg.Set.iter
                    (fun l ->
                      if
                        (not (Reg.equal l d))
                        && Option.fold ~none:true
                             ~some:(fun s -> not (Reg.equal l s))
                             skip
                        && Reg.cls_equal (Reg.cls l) (Reg.cls d)
                      then begin
                        let key =
                          if Reg.compare d l < 0 then (d, l) else (l, d)
                        in
                        Hashtbl.replace expected key ()
                      end)
                    !live_now;
                  live_now := Reg.Set.remove d !live_now
              | None -> ());
              List.iter
                (fun u -> live_now := Reg.Set.add u !live_now)
                (Instr.uses i))
            (List.rev (Iloc.Block.instrs b)))
        cfg;
      let ok = ref true in
      Hashtbl.iter
        (fun (a, b) () ->
          if
            not
              (Remat.Interference.interfere g
                 (Remat.Interference.index g a)
                 (Remat.Interference.index g b))
          then ok := false)
        expected;
      (* and the edge count matches exactly *)
      !ok && Remat.Interference.n_edges g = Hashtbl.length expected)

(* Build an interference graph directly from an edge list (all nodes in
   the integer class), for coloring properties independent of any code. *)
let graph_of_edges n edges = Remat.Interference.of_edges n edges

let graph_gen =
  QCheck.Gen.(
    int_range 1 18 >>= fun n ->
    list_size (int_bound 60) (pair (int_bound (n - 1)) (int_bound (n - 1)))
    >|= fun edges -> (n, edges))

(* On any graph, simplify + select produce a proper partial coloring and
   the stack covers every node exactly once. *)
let coloring_prop =
  QCheck.Test.make ~count:300 ~name:"simplify/select produce proper colorings"
    (QCheck.make graph_gen)
    (fun (n, edges) ->
      let g = graph_of_edges n edges in
      let k _ = 3 in
      let costs = Array.init n (fun i -> float_of_int (i + 1)) in
      let order = Remat.Simplify.run g ~k ~costs in
      if List.length (List.sort_uniq Int.compare order) <> n then false
      else begin
        let partners = Array.make n [] in
        let sel = Remat.Select.run g ~k ~order ~partners in
        let ok = ref true in
        for i = 0 to n - 1 do
          (match sel.Remat.Select.colors.(i) with
          | Some c -> if c < 0 || c >= 3 then ok := false
          | None -> ());
          List.iter
            (fun j ->
              match (sel.Remat.Select.colors.(i), sel.Remat.Select.colors.(j)) with
              | Some a, Some b -> if a = b then ok := false
              | _ -> ())
            (Remat.Interference.neighbors g i)
        done;
        !ok
      end)

(* Any graph whose degrees are all below k colors without spills. *)
let trivial_coloring_prop =
  QCheck.Test.make ~count:300 ~name:"low-degree graphs never spill"
    (QCheck.make graph_gen)
    (fun (n, edges) ->
      let g = graph_of_edges n edges in
      let maxdeg =
        List.fold_left max 0 (List.init n (Remat.Interference.degree g))
      in
      let k _ = maxdeg + 1 in
      let costs = Array.make n 1.0 in
      let order = Remat.Simplify.run g ~k ~costs in
      let partners = Array.make n [] in
      let sel = Remat.Select.run g ~k ~order ~partners in
      sel.Remat.Select.spilled = [])

let () =
  Alcotest.run "remat-core"
    [
      ("tag", tag_unit);
      ("propagation", propagation_unit);
      ("renumber", renumber_unit);
      ("interference", interference_unit);
      ("spill-cost", spill_cost_unit);
      ("color", color_unit);
      ("splitting", splitting_unit);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ interference_prop; coloring_prop; trivial_coloring_prop ] );
    ]
