(* Focused unit tests for the smaller allocator components: machine
   descriptions, modes, phase statistics, spill-code insertion mechanics,
   conservative coalescing, and the Graphviz dumps. *)

module Cfg = Iloc.Cfg
module Reg = Iloc.Reg
module Instr = Iloc.Instr
module Tag = Remat.Tag

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- machine --- *)

let machine_tests =
  [
    tc "standard and huge" (fun () ->
        check Alcotest.int "std int" 16 Remat.Machine.standard.Remat.Machine.k_int;
        check Alcotest.int "std float" 16
          Remat.Machine.standard.Remat.Machine.k_float;
        check Alcotest.int "huge int" 128 Remat.Machine.huge.Remat.Machine.k_int);
    tc "k_for distinguishes classes" (fun () ->
        let m = Remat.Machine.make ~name:"m" ~k_int:7 ~k_float:3 in
        check Alcotest.int "int" 7 (Remat.Machine.k_for m Reg.Int);
        check Alcotest.int "float" 3 (Remat.Machine.k_for m Reg.Float));
    tc "degenerate machines rejected" (fun () ->
        try
          ignore (Remat.Machine.make ~name:"bad" ~k_int:1 ~k_float:16);
          Alcotest.fail "k=1 accepted"
        with Invalid_argument _ -> ());
  ]

(* --- mode --- *)

let mode_tests =
  [
    tc "string round trip" (fun () ->
        List.iter
          (fun m ->
            check Alcotest.bool
              (Remat.Mode.to_string m)
              true
              (Remat.Mode.of_string (Remat.Mode.to_string m) = Some m))
          Remat.Mode.all);
    tc "unknown mode" (fun () ->
        check Alcotest.bool "none" true (Remat.Mode.of_string "x" = None));
    tc "splits classification" (fun () ->
        check Alcotest.bool "chaitin" false (Remat.Mode.splits Remat.Mode.Chaitin_remat);
        check Alcotest.bool "briggs" true (Remat.Mode.splits Remat.Mode.Briggs_remat));
    tc "loop schemes" (fun () ->
        check Alcotest.bool "briggs none" true
          (Remat.Mode.loop_scheme Remat.Mode.Briggs_remat = None);
        check Alcotest.bool "all loops" true
          (Remat.Mode.loop_scheme Remat.Mode.Briggs_split_all_loops
          = Some `All_loops));
    tc "core subset" (fun () ->
        check Alcotest.int "four core modes" 4 (List.length Remat.Mode.core);
        List.iter
          (fun m ->
            check Alcotest.bool "core in all" true (List.mem m Remat.Mode.all))
          Remat.Mode.core);
  ]

(* --- stats --- *)

let stats_tests =
  [
    tc "rows accumulate in order" (fun () ->
        let s = Remat.Stats.create () in
        let r1 = Remat.Stats.time s ~round:1 Remat.Stats.Build (fun () -> 41 + 1) in
        check Alcotest.int "result" 42 r1;
        ignore (Remat.Stats.time s ~round:1 Remat.Stats.Select (fun () -> ()));
        ignore (Remat.Stats.time s ~round:2 Remat.Stats.Build (fun () -> ()));
        let rows = Remat.Stats.rows s in
        check Alcotest.int "three rows" 3 (List.length rows);
        (match rows with
        | [ a; b; c ] ->
            check Alcotest.int "round order" 1 a.Remat.Stats.round;
            check Alcotest.bool "phases" true
              (a.Remat.Stats.phase = Remat.Stats.Build
              && b.Remat.Stats.phase = Remat.Stats.Select
              && c.Remat.Stats.round = 2)
        | _ -> Alcotest.fail "rows");
        check Alcotest.bool "total nonneg" true (Remat.Stats.total s >= 0.));
    tc "time is exception safe" (fun () ->
        let s = Remat.Stats.create () in
        (try
           Remat.Stats.time s ~round:1 Remat.Stats.Spill (fun () ->
               failwith "boom")
         with Failure _ -> ());
        check Alcotest.int "row recorded" 1 (List.length (Remat.Stats.rows s)));
    tc "by_phase merges duplicates" (fun () ->
        let s = Remat.Stats.create () in
        ignore (Remat.Stats.time s ~round:1 Remat.Stats.Build (fun () -> ()));
        ignore (Remat.Stats.time s ~round:1 Remat.Stats.Build (fun () -> ()));
        check Alcotest.int "merged" 1 (List.length (Remat.Stats.by_phase s)));
  ]

(* --- spill code mechanics --- *)

let spill_code_tests =
  let routine () =
    Iloc.Parser.routine
      "routine x\n\
       data const t[2] = { 5 6 }\n\
       entry:\n\
      \  r1 <- laddr @t\n\
      \  r2 <- loadi r1 0\n\
      \  r3 <- addi r2 1\n\
      \  r4 <- add r3 r2\n\
      \  print r4\n\
      \  print r1\n\
      \  ret\n"
  in
  [
    tc "memory spill inserts stores and reloads" (fun () ->
        let cfg = routine () in
        let tags = Reg.Tbl.create 8 in
        let infinite = Reg.Tbl.create 8 in
        let slot_counter = ref 0 in
        let r2 = Reg.make 2 Reg.Int in
        let st =
          Remat.Spill_code.insert cfg ~tags ~infinite ~spilled:[ r2 ]
            ~slot_counter
        in
        check Alcotest.int "one memory lr" 1 st.Remat.Spill_code.memory_lrs;
        check Alcotest.int "one slot" 1 st.Remat.Spill_code.new_slots;
        let spills = ref 0 and reloads = ref 0 in
        Cfg.iter_instrs
          (fun _ i ->
            match i.Instr.op with
            | Instr.Spill _ -> incr spills
            | Instr.Reload _ -> incr reloads
            | _ -> ())
          cfg;
        check Alcotest.int "one store (one def)" 1 !spills;
        check Alcotest.int "two reloads (two uses)" 2 !reloads;
        Testutil.assert_equiv ~what:"memory spill" (routine ()) cfg);
    tc "remat spill deletes the def and re-creates at uses" (fun () ->
        let cfg = routine () in
        let tags = Reg.Tbl.create 8 in
        let r1 = Reg.make 1 Reg.Int in
        Reg.Tbl.replace tags r1 (Tag.Inst (Instr.Laddr ("t", 0)));
        let infinite = Reg.Tbl.create 8 in
        let slot_counter = ref 0 in
        let st =
          Remat.Spill_code.insert cfg ~tags ~infinite ~spilled:[ r1 ]
            ~slot_counter
        in
        check Alcotest.int "one remat lr" 1 st.Remat.Spill_code.remat_lrs;
        check Alcotest.int "no slots" 0 st.Remat.Spill_code.new_slots;
        (* r1 must no longer appear; two fresh laddr sites must exist
           (the loadi use and the print use) on top of zero spills *)
        let laddrs = ref 0 in
        Cfg.iter_instrs
          (fun _ i ->
            (match i.Instr.op with
            | Instr.Laddr ("t", 0) -> incr laddrs
            | Instr.Spill _ | Instr.Reload _ ->
                Alcotest.fail "memory traffic for a never-killed value"
            | _ -> ());
            List.iter
              (fun r ->
                if Reg.equal r r1 then Alcotest.fail "r1 still referenced")
              (Instr.defs i @ Instr.uses i))
          cfg;
        check Alcotest.int "laddr per use" 2 !laddrs;
        Testutil.assert_equiv ~what:"remat spill" (routine ()) cfg);
    tc "spilling a temporary raises" (fun () ->
        let cfg = routine () in
        let tags = Reg.Tbl.create 8 in
        let infinite = Reg.Tbl.create 8 in
        let r2 = Reg.make 2 Reg.Int in
        Reg.Tbl.replace infinite r2 ();
        try
          ignore
            (Remat.Spill_code.insert cfg ~tags ~infinite ~spilled:[ r2 ]
               ~slot_counter:(ref 0));
          Alcotest.fail "temp spill accepted"
        with Remat.Spill_code.Pressure_too_high _ -> ());
  ]

(* --- conservative coalescing criterion --- *)

let ctx_of ?(split_pairs = []) cfg =
  let dom = Dataflow.Dominance.compute cfg in
  let loops = Dataflow.Loops.compute cfg dom in
  Remat.Context.create ~mode:Remat.Mode.Briggs_remat
    ~machine:(Remat.Machine.make ~name:"test4" ~k_int:4 ~k_float:4)
    ~loops ~tags:(Reg.Tbl.create 4) ~split_pairs
    ~stats:(Remat.Stats.create ()) cfg

let coalesce_tests =
  [
    tc "unrestricted pass skips split copies" (fun () ->
        let cfg =
          Iloc.Parser.routine
            "routine x\n\
             entry:\n\
            \  r1 <- ldi 1\n\
            \  r2 <- copy r1\n\
            \  print r2\n\
            \  ret\n"
        in
        let r1 = Reg.make 1 Reg.Int and r2 = Reg.make 2 Reg.Int in
        let ctx = ctx_of ~split_pairs:[ (r2, r1) ] cfg in
        let o = Remat.Coalesce.pass Remat.Coalesce.Unrestricted ctx in
        check Alcotest.bool "unchanged" false o.Remat.Coalesce.changed);
    tc "conservative pass coalesces safe splits" (fun () ->
        let cfg =
          Iloc.Parser.routine
            "routine x\n\
             entry:\n\
            \  r1 <- ldi 1\n\
            \  r2 <- copy r1\n\
            \  print r2\n\
            \  ret\n"
        in
        let r1 = Reg.make 1 Reg.Int and r2 = Reg.make 2 Reg.Int in
        let ctx = ctx_of ~split_pairs:[ (r2, r1) ] cfg in
        let o = Remat.Coalesce.pass Remat.Coalesce.Conservative ctx in
        check Alcotest.bool "changed" true o.Remat.Coalesce.changed;
        check Alcotest.int "one coalesce" 1 o.Remat.Coalesce.coalesced;
        check Alcotest.int "pair dropped" 0
          (List.length ctx.Remat.Context.split_pairs);
        let copies = ref 0 in
        Cfg.iter_instrs
          (fun _ i -> if Instr.is_copy i then incr copies)
          cfg;
        check Alcotest.int "copy removed" 0 !copies);
    tc "interfering copy is never coalesced" (fun () ->
        (* r1 still used after r2 is redefined-from... here r1 and r2 are
           simultaneously live after the copy, so they interfere (the
           copy redefinition pattern): r2 <- copy r1; r2 <- addi r2;
           print both. *)
        let cfg =
          Iloc.Parser.routine
            "routine x\n\
             entry:\n\
            \  r1 <- ldi 1\n\
            \  r2 <- copy r1\n\
            \  r2 <- addi r2 1\n\
            \  print r1\n\
            \  print r2\n\
            \  ret\n"
        in
        let ctx = ctx_of cfg in
        let o = Remat.Coalesce.pass Remat.Coalesce.Unrestricted ctx in
        check Alcotest.bool "unchanged" false o.Remat.Coalesce.changed);
  ]

(* --- graphviz dumps --- *)

let dump_tests =
  [
    tc "cfg dot shape" (fun () ->
        let text = Iloc.Dot.cfg_to_string (Testutil.diamond ()) in
        List.iter
          (fun frag ->
            check Alcotest.bool frag true (contains text frag))
          [ "digraph"; "b0 -> b1"; "b0 -> b2"; "b1 -> b3"; "shape=record" ]);
    tc "interference dot shape" (fun () ->
        let cfg = Testutil.high_pressure () in
        let live = Dataflow.Liveness.compute cfg in
        let g = Remat.Interference.build cfg live in
        let text = Remat.Dump.interference_to_string g in
        check Alcotest.bool "graph" true (contains text "graph interference");
        check Alcotest.bool "edges" true (contains text " -- "));
    tc "colored dump marks spills" (fun () ->
        let cfg = Testutil.straight () in
        let live = Dataflow.Liveness.compute cfg in
        let g = Remat.Interference.build cfg live in
        let colors = Array.make (Remat.Interference.n_nodes g) None in
        if Array.length colors > 0 then colors.(0) <- Some 1;
        let text = Remat.Dump.interference_to_string ~colors g in
        check Alcotest.bool "spill color" true (contains text "#ff4444"));
  ]

(* --- reproducibility --- *)

let determinism_tests =
  [
    tc "allocation is deterministic" (fun () ->
        List.iter
          (fun name ->
            let kernel = Suite.Kernels.find name in
            let text () =
              let cfg = Suite.Kernels.cfg_of ~optimize:true kernel in
              let res =
                Remat.Allocator.run ~machine:Remat.Machine.standard cfg
              in
              Iloc.Printer.routine_to_string res.Remat.Allocator.cfg
            in
            check Alcotest.string (name ^ " stable") (text ()) (text ()))
          [ "fehl"; "tomcatv"; "ptrsweep" ]);
    tc "optimization pipeline is idempotent" (fun () ->
        List.iter
          (fun name ->
            let kernel = Suite.Kernels.find name in
            let once = Suite.Kernels.cfg_of ~optimize:true kernel in
            let twice = Opt.Pipeline.run once in
            check Alcotest.string (name ^ " fixpoint")
              (Iloc.Printer.routine_to_string once)
              (Iloc.Printer.routine_to_string twice))
          [ "fehl"; "sgemm"; "bsearch"; "lfk7" ]);
    tc "interpreter is deterministic" (fun () ->
        let cfg = Suite.Kernels.cfg_of (Suite.Kernels.find "svd") in
        check Alcotest.bool "same outcome" true
          (Sim.Interp.outcome_equal (Sim.Interp.run cfg) (Sim.Interp.run cfg)));
  ]

let () =
  Alcotest.run "components"
    [
      ("machine", machine_tests);
      ("mode", mode_tests);
      ("stats", stats_tests);
      ("spill-code", spill_code_tests);
      ("coalesce", coalesce_tests);
      ("dump", dump_tests);
      ("determinism", determinism_tests);
    ]
