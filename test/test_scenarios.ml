(* Allocator-quality scenarios, promoted from the former scratch
   drivers debug_fig1, debug_kernel and debug_pressure so they run (and
   assert) under `dune runtest` instead of bit-rotting as orphan
   executables.  The fourth driver, debug_incr, diagnosed
   incremental-vs-rebuilt interference graphs and is fully subsumed by
   test_incremental.ml.

   Every allocation goes through Testutil.alloc and is therefore also
   statically verified by lib/verify. *)

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

module Mode = Remat.Mode
module Machine = Remat.Machine

(* Dynamic spill cost of one mode on one routine: cycles on the target
   machine minus cycles on the (nearly spill-free) huge machine, §5.2.
   Also asserts both allocations preserve the observable outcome. *)
let spill_cycles ~mode ~machine cfg =
  let std = Testutil.alloc ~mode ~machine cfg in
  let huge = Testutil.alloc ~mode ~machine:Machine.huge cfg in
  Testutil.assert_equiv ~what:"target machine" cfg std.Remat.Allocator.cfg;
  Testutil.assert_equiv ~what:"huge machine" cfg huge.Remat.Allocator.cfg;
  let ct = (Testutil.run_ok std.Remat.Allocator.cfg).Sim.Interp.counts in
  let ch = (Testutil.run_ok huge.Remat.Allocator.cfg).Sim.Interp.counts in
  (std, huge, Sim.Counts.cycles_signed (Sim.Counts.sub ct ch))

(* --- the paper's Figure 1 fixture, per mode, std vs huge --- *)

let fig1_tests =
  [
    tc "every mode preserves outcomes and pays no negative spill cost"
      (fun () ->
        let cfg = Testutil.fig1 () in
        List.iter
          (fun mode ->
            let std, huge, cost =
              spill_cycles ~mode ~machine:Machine.standard cfg
            in
            check Alcotest.bool
              (Printf.sprintf "%s: huge machine never spills"
                 (Mode.to_string mode))
              true
              (huge.Remat.Allocator.spilled_memory = 0
              && huge.Remat.Allocator.spilled_remat = 0);
            check Alcotest.bool
              (Printf.sprintf "%s: spill cost %d >= 0" (Mode.to_string mode)
                 cost)
              true (cost >= 0);
            check Alcotest.bool
              (Printf.sprintf "%s: some rounds ran" (Mode.to_string mode))
              true
              (std.Remat.Allocator.rounds >= 1))
          [ Mode.No_remat; Mode.Chaitin_remat; Mode.Briggs_remat ]);
    tc "briggs rematerializes the label addresses instead of storing them"
      (fun () ->
        let cfg = Testutil.fig1 () in
        let res = Testutil.alloc ~mode:Mode.Briggs_remat cfg in
        check Alcotest.bool "rematerialized live ranges exist" true
          (res.Remat.Allocator.spilled_remat > 0));
  ]

(* --- suite kernels across modes (the debug_kernel sweep) --- *)

let kernel_modes =
  [
    Mode.No_remat; Mode.Chaitin_remat; Mode.Briggs_remat;
    Mode.Briggs_remat_phi_splits;
  ]

let kernel_tests =
  [
    tc "ptrsweep preserves outcomes under every mode, std and huge"
      (fun () ->
        let cfg = Suite.Kernels.cfg_of (Suite.Kernels.find "ptrsweep") in
        List.iter
          (fun mode ->
            let _, _, cost =
              spill_cycles ~mode ~machine:Machine.standard cfg
            in
            check Alcotest.bool
              (Printf.sprintf "%s: spill cost %d >= 0" (Mode.to_string mode)
                 cost)
              true (cost >= 0))
          kernel_modes);
    tc "rematerialization does not lose to no-remat on ptrsweep" (fun () ->
        let cfg = Suite.Kernels.cfg_of (Suite.Kernels.find "ptrsweep") in
        let _, _, none =
          spill_cycles ~mode:Mode.No_remat ~machine:Machine.standard cfg
        in
        let _, _, briggs =
          spill_cycles ~mode:Mode.Briggs_remat ~machine:Machine.standard cfg
        in
        check Alcotest.bool
          (Printf.sprintf "briggs %d <= no_remat %d" briggs none)
          true (briggs <= none));
  ]

(* --- constrained register sets (the debug_pressure loop) --- *)

let pressure_tests =
  [
    tc "ptrsweep allocates and runs at k=8/8" (fun () ->
        let cfg = Suite.Kernels.cfg_of (Suite.Kernels.find "ptrsweep") in
        let machine = Machine.make ~name:"k8" ~k_int:8 ~k_float:8 in
        let res = Testutil.alloc ~machine cfg in
        Testutil.assert_equiv ~what:"ptrsweep@8/8" cfg
          res.Remat.Allocator.cfg;
        Iloc.Cfg.iter_instrs
          (fun _ i ->
            List.iter
              (fun r -> check Alcotest.bool "register below 8" true
                  (Iloc.Reg.id r < 8))
              (Iloc.Instr.defs i @ Iloc.Instr.uses i))
          res.Remat.Allocator.cfg);
    tc "every kernel allocates and runs at k=8/8" (fun () ->
        let machine = Machine.make ~name:"k8" ~k_int:8 ~k_float:8 in
        List.iter
          (fun k ->
            let cfg = Suite.Kernels.cfg_of k in
            match Testutil.alloc ~machine cfg with
            | res ->
                Testutil.assert_equiv
                  ~what:(k.Suite.Kernels.name ^ "@8/8")
                  cfg res.Remat.Allocator.cfg
            | exception Remat.Spill_code.Pressure_too_high _ ->
                (* A principled refusal is acceptable on a small machine;
                   silent miscompilation is not. *)
                ())
          Suite.Kernels.all);
  ]

let () =
  Alcotest.run "scenarios"
    [
      ("fig1", fig1_tests);
      ("kernels", kernel_tests);
      ("pressure", pressure_tests);
    ]
