(* The coloring-core rewrite (worklist simplify, epoch-scratch select,
   worklist coalescing, incremental significant-degree counts) against
   the retained pre-optimization code in [Reference]: on random routines
   the two must produce byte-identical results — same simplify stack,
   same colors and spill set, same coalesced routine.  Plus directed
   tests of the worklist structures and the boundary cases (degree
   exactly k-1 / k, nodes merged away, degree collapsing to zero). *)

open Alcotest
module Cfg = Iloc.Cfg
module Reg = Iloc.Reg
module Gen = Fuzz.Gen
module Interference = Remat.Interference
module Worklist = Dataflow.Worklist

let machines =
  [
    Remat.Machine.make ~name:"tiny" ~k_int:6 ~k_float:4;
    Remat.Machine.make ~name:"scale" ~k_int:8 ~k_float:8;
  ]

let fresh_ctx ~mode ~machine cfg =
  let cfg0 = Cfg.split_critical_edges cfg in
  let dom = Dataflow.Dominance.compute cfg0 in
  let loops = Dataflow.Loops.compute cfg0 dom in
  let rn = Remat.Renumber.run mode cfg0 in
  Remat.Context.create ~mode ~machine ~loops ~tags:rn.Remat.Renumber.tags
    ~split_pairs:rn.Remat.Renumber.split_pairs
    ~stats:(Remat.Stats.create ()) rn.Remat.Renumber.cfg

let partners_of ctx g =
  let partners = Array.make (Interference.n_nodes g) [] in
  List.iter
    (fun (a, b) ->
      match (Interference.index_opt g a, Interference.index_opt g b) with
      | Some ia, Some ib ->
          let ia = Interference.find g ia and ib = Interference.find g ib in
          partners.(ia) <- ib :: partners.(ia);
          partners.(ib) <- ia :: partners.(ib)
      | _ -> ())
    ctx.Remat.Context.split_pairs;
  partners

(* Recompute every node's significant-neighbor count from scratch and
   compare with the incrementally maintained one. *)
let check_sig_counts what ~k g =
  for i = 0 to Interference.n_nodes g - 1 do
    if Interference.alive g i then begin
      let expect =
        Interference.fold_neighbors
          (fun nb acc ->
            if
              Interference.degree g nb >= k (Reg.cls (Interference.reg g nb))
            then acc + 1
            else acc)
          g i 0
      in
      if expect <> Interference.sig_neighbors g i then
        QCheck.Test.fail_reportf "%s: node %d: sig_neighbors %d, expected %d"
          what i
          (Interference.sig_neighbors g i)
          expect
    end
  done

(* One seed, one machine: coalesce both ways, then compare every phase. *)
let check_seed ~config ~machine seed =
  let mode = Remat.Mode.Briggs_remat in
  let cfg () = Gen.generate ~config seed in
  let ctx_old = fresh_ctx ~mode ~machine (cfg ()) in
  Reference.Coalesce.fixpoint ctx_old;
  let ctx = fresh_ctx ~mode ~machine (cfg ()) in
  Remat.Allocator.build_coalesce ctx;
  if
    not
      (Cfg.structural_equal ctx_old.Remat.Context.cfg ctx.Remat.Context.cfg)
  then
    QCheck.Test.fail_reportf "seed %d on %s: coalesced routines differ" seed
      machine.Remat.Machine.name;
  let g = Remat.Context.graph ctx in
  let k = ctx.Remat.Context.k in
  check_sig_counts
    (Printf.sprintf "seed %d on %s after coalesce" seed
       machine.Remat.Machine.name)
    ~k g;
  let costs = Remat.Spill_cost.phase ctx in
  let old_stack = Reference.Simplify.run g ~k ~costs in
  let new_stack = Remat.Simplify.run g ~k ~costs in
  if old_stack <> new_stack then
    QCheck.Test.fail_reportf "seed %d on %s: simplify stacks differ" seed
      machine.Remat.Machine.name;
  let order = new_stack in
  let partners = partners_of ctx g in
  let old_sel = Reference.Select.run g ~k ~order ~partners in
  let new_sel = Remat.Select.run g ~k ~order ~partners in
  if old_sel.Reference.Select.colors <> new_sel.Remat.Select.colors then
    QCheck.Test.fail_reportf "seed %d on %s: select colors differ" seed
      machine.Remat.Machine.name;
  if old_sel.Reference.Select.spilled <> new_sel.Remat.Select.spilled then
    QCheck.Test.fail_reportf "seed %d on %s: spill sets differ" seed
      machine.Remat.Machine.name;
  true

let equivalence_prop name config =
  QCheck.Test.make ~count:40
    ~name:(Printf.sprintf "old/new coloring identical (%s)" name)
    QCheck.(make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      List.for_all
        (fun machine -> check_seed ~config ~machine seed)
        machines)

let qcheck_props =
  [
    equivalence_prop "default" Gen.default;
    equivalence_prop "high-pressure" Gen.high_pressure;
  ]

(* --- directed: Worklist.Heap --- *)

let heap_tests =
  [
    test_case "pop order: metric asc, degree desc, node asc" `Quick
      (fun () ->
        let h = Worklist.Heap.create () in
        Worklist.Heap.push h ~metric:2.0 ~deg:3 10;
        Worklist.Heap.push h ~metric:1.0 ~deg:2 11;
        Worklist.Heap.push h ~metric:1.0 ~deg:5 12;
        Worklist.Heap.push h ~metric:1.0 ~deg:5 7;
        Worklist.Heap.push h ~metric:3.0 ~deg:9 1;
        let order = ref [] in
        let rec drain () =
          match Worklist.Heap.pop h with
          | Some (_, _, i) ->
              order := i :: !order;
              drain ()
          | None -> ()
        in
        drain ();
        (* metric 1.0 first, within it deg 5 before deg 2, within (1.0,5)
           node 7 before 12. *)
        check (list int) "order" [ 7; 12; 11; 10; 1 ] (List.rev !order));
    test_case "infinite metrics compare equal; degree breaks the tie"
      `Quick (fun () ->
        let h = Worklist.Heap.create () in
        Worklist.Heap.push h ~metric:infinity ~deg:2 0;
        Worklist.Heap.push h ~metric:infinity ~deg:7 1;
        let first =
          match Worklist.Heap.pop h with Some (_, _, i) -> i | None -> -1
        in
        check int "highest degree first" 1 first);
    test_case "lazy re-push surfaces in corrected position" `Quick
      (fun () ->
        (* Node 0 was pushed at degree 4; its true degree fell to 1,
           raising its metric past node 1's.  The consumer detects the
           stale entry and re-pushes — after which node 1 must pop
           first. *)
        let h = Worklist.Heap.create () in
        let deg = [| 1; 3 |] in
        let costs = [| 4.0; 6.0 |] in
        Worklist.Heap.push h ~metric:(4.0 /. 4.0) ~deg:4 0;
        Worklist.Heap.push h ~metric:(6.0 /. 3.0) ~deg:3 1;
        let rec pop_current () =
          match Worklist.Heap.pop h with
          | None -> -1
          | Some (_, d, i) ->
              if d <> deg.(i) then begin
                Worklist.Heap.push h
                  ~metric:(costs.(i) /. float_of_int deg.(i))
                  ~deg:deg.(i) i;
                pop_current ()
              end
              else i
        in
        check int "corrected minimum" 1 (pop_current ());
        check int "re-pushed entry still present" 0 (pop_current ()));
    test_case "clear empties, capacity survives" `Quick (fun () ->
        let h = Worklist.Heap.create ~cap:2 () in
        for i = 0 to 20 do
          Worklist.Heap.push h ~metric:(float_of_int i) ~deg:1 i
        done;
        check int "length" 21 (Worklist.Heap.length h);
        Worklist.Heap.clear h;
        check bool "empty" true (Worklist.Heap.is_empty h);
        check (option (triple (float 0.0) int int)) "pop on empty" None
          (Worklist.Heap.pop h));
  ]

(* --- directed: Worklist.Buckets --- *)

let bucket_tests =
  [
    test_case "pop_min sweeps upward" `Quick (fun () ->
        let b = Worklist.Buckets.create ~keys:8 in
        Worklist.Buckets.push b ~key:5 50;
        Worklist.Buckets.push b ~key:2 20;
        Worklist.Buckets.push b ~key:7 70;
        check (option int) "smallest key" (Some 20)
          (Worklist.Buckets.pop_min b);
        check (option int) "next" (Some 50) (Worklist.Buckets.pop_min b);
        check (option int) "last" (Some 70) (Worklist.Buckets.pop_min b);
        check (option int) "drained" None (Worklist.Buckets.pop_min b));
    test_case "push below cursor rewinds it" `Quick (fun () ->
        let b = Worklist.Buckets.create ~keys:8 in
        Worklist.Buckets.push b ~key:6 60;
        check (option int) "cursor advanced to 6" (Some 60)
          (Worklist.Buckets.pop_min b);
        Worklist.Buckets.push b ~key:1 10;
        Worklist.Buckets.push b ~key:6 61;
        check (option int) "rewound to low bucket" (Some 10)
          (Worklist.Buckets.pop_min b);
        check (option int) "then high" (Some 61)
          (Worklist.Buckets.pop_min b));
    test_case "out-of-range keys are clamped" `Quick (fun () ->
        let b = Worklist.Buckets.create ~keys:4 in
        Worklist.Buckets.push b ~key:100 1;
        Worklist.Buckets.push b ~key:(-3) 2;
        check (option int) "negative clamps to 0" (Some 2)
          (Worklist.Buckets.pop_min b);
        check (option int) "overflow clamps to keys-1" (Some 1)
          (Worklist.Buckets.pop_min b);
        check int "empty" 0 (Worklist.Buckets.length b));
  ]

(* --- directed: simplify boundaries --- *)

(* A clique of size c in a graph of n fresh integer nodes. *)
let clique n c =
  let edges = ref [] in
  for i = 0 to c - 1 do
    for j = i + 1 to c - 1 do
      edges := (i, j) :: !edges
    done
  done;
  Interference.of_edges n !edges

let const_k k _ = k

let simplify_tests =
  [
    test_case "degree k-1 is trivial, degree k is a candidate" `Quick
      (fun () ->
        (* K4 with k=3: every node has degree 3 = k, so the first removal
           must come from the candidate heap; after it the rest drain
           through the trivial queue.  The stack must still list all
           nodes. *)
        let g = clique 4 4 in
        let costs = [| 8.0; 4.0; 2.0; 1.0 |] in
        let stack = Remat.Simplify.run g ~k:(const_k 3) ~costs in
        let reference = Reference.Simplify.run g ~k:(const_k 3) ~costs in
        check (list int) "matches reference" reference stack;
        check int "all nodes on stack" 4 (List.length stack);
        (* Chaitin metric: cost/degree, all degrees 3 — node 3 is the
           cheapest candidate and is removed first (stack bottom). *)
        check int "cheapest spill candidate first"
          3
          (List.nth stack 3));
    test_case "isolated nodes go out through the trivial queue" `Quick
      (fun () ->
        let g = Interference.of_edges 3 [] in
        let costs = [| 1.0; 1.0; 1.0 |] in
        let stack = Remat.Simplify.run g ~k:(const_k 2) ~costs in
        check (list int) "FIFO order, reversed onto the stack" [ 2; 1; 0 ]
          stack);
    test_case "merged-away nodes never appear" `Quick (fun () ->
        let g = Interference.of_edges 4 [ (0, 1); (2, 3) ] in
        Interference.merge g ~keep:0 ~drop:2;
        let costs = [| 1.0; 1.0; 1.0; 1.0 |] in
        let stack = Remat.Simplify.run g ~k:(const_k 2) ~costs in
        check bool "2 absent" false (List.mem 2 stack);
        check int "three nodes" 3 (List.length stack);
        check (list int) "matches reference"
          (Reference.Simplify.run g ~k:(const_k 2) ~costs)
          stack);
    test_case "zero-degree collapse under k=0 stays exact" `Quick
      (fun () ->
        (* With k=0 nothing is ever trivial; when a candidate's last
           neighbor is removed its metric collapses from cost/deg to 0,
           which must surface it before costlier positive-metric nodes —
           the deg->0 re-push in simplify's remove. *)
        let g = Interference.of_edges 3 [ (0, 1) ] in
        let costs = [| 100.0; 100.0; 50.0 |] in
        let stack = Remat.Simplify.run g ~k:(const_k 0) ~costs in
        check (list int) "matches reference"
          (Reference.Simplify.run g ~k:(const_k 0) ~costs)
          stack);
  ]

(* --- directed: significant-degree counts under mutation --- *)

let sig_tests =
  [
    test_case "counts track add_edge flips" `Quick (fun () ->
        let k = const_k 2 in
        let g = Interference.of_edges ~k 4 [ (0, 1) ] in
        check int "no significant neighbors yet" 0
          (Interference.sig_neighbors g 0);
        (* Raise node 1 to degree 2 = k: node 0 and 2 must see it. *)
        Interference.add_edge g 1 2;
        let expect i =
          Interference.fold_neighbors
            (fun nb acc ->
              if Interference.degree g nb >= k Reg.Int then acc + 1 else acc)
            g i 0
        in
        for i = 0 to 3 do
          check int
            (Printf.sprintf "node %d" i)
            (expect i)
            (Interference.sig_neighbors g i)
        done);
    test_case "counts survive merge" `Quick (fun () ->
        let k = const_k 2 in
        let g =
          Interference.of_edges ~k 6
            [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]
        in
        Interference.merge g ~keep:0 ~drop:2;
        let expect i =
          Interference.fold_neighbors
            (fun nb acc ->
              if Interference.degree g nb >= k Reg.Int then acc + 1 else acc)
            g i 0
        in
        for i = 0 to 5 do
          if Interference.alive g i then
            check int
              (Printf.sprintf "node %d" i)
              (expect i)
              (Interference.sig_neighbors g i)
        done;
        check int "dropped node cleared" 0 (Interference.sig_neighbors g 2));
  ]

(* --- directed: stats rows --- *)

let stats_tests =
  [
    test_case "phase rows carry non-negative allocation counts" `Quick
      (fun () ->
        let cfg = Suite.Kernels.cfg_of (Suite.Kernels.find "repvid") in
        (* ~verify: the whole coloring stack feeds the allocation this
           checks, so run it under the static translation validator. *)
        let res = Remat.Allocator.allocate ~verify:true cfg in
        let rows = Remat.Stats.by_phase res.Remat.Allocator.stats in
        check bool "has rows" true (rows <> []);
        List.iter
          (fun (round, _, seconds, words, major) ->
            check bool "round non-negative" true (round >= 0);
            check bool "seconds non-negative" true (seconds >= 0.0);
            check bool "minor words non-negative" true (words >= 0.0);
            check bool "major words non-negative" true (major >= 0.0))
          rows);
  ]

let () =
  Alcotest.run "coloring"
    [
      ("old-vs-new", List.map QCheck_alcotest.to_alcotest qcheck_props);
      ("worklist-heap", heap_tests);
      ("worklist-buckets", bucket_tests);
      ("simplify-boundaries", simplify_tests);
      ("significant-degree", sig_tests);
      ("stats", stats_tests);
    ]
